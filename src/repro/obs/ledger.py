"""Persistent run ledger: every schedule/simulate/service run, archived.

The paper's evaluation (§V) compares makespan/cost/success-rate
distributions across algorithms and hundreds of stochastic runs — exactly
the longitudinal record a process throws away when it exits. The ledger
keeps it: one SQLite row per run (spec fingerprint, workflow family,
algorithm, budget, predicted vs. simulated makespan and cost, success
flag, Monte Carlo sample stats, trace id, wall-clock timings, package
version), written in WAL mode so concurrent writers — service worker
threads, a sweep process, the CLI — do not serialize each other.

Like the tracer, the ledger follows a null-object pattern: the
process-global default is a :class:`NullLedger` whose ``record`` is a
no-op, so instrumented paths cost one attribute check when disabled.
Enable archiving for a region with::

    from repro.obs.ledger import RunLedger, use_ledger

    with use_ledger(RunLedger("runs.db")):
        run_sweep(config)          # every point lands in runs.db

On top of the archive sit the regression helpers:
:func:`baseline_from_ledger` folds the latest runs into a per-group
baseline (stored in ``BENCH_*.json``), and :func:`compare_to_baseline`
re-measures the ledger against such a baseline — the ``repro-exp ledger
regress`` CI gate. Simulated makespans and costs are deterministic given
the seeds, so baselines transfer across machines.
"""

from __future__ import annotations

import json
import math
import sqlite3
import statistics
import sys
import threading
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import RUN_RECORDED, EventBus

__all__ = [
    "RunRow",
    "LoadRunRow",
    "RunLedger",
    "NullLedger",
    "get_ledger",
    "set_ledger",
    "use_ledger",
    "baseline_from_ledger",
    "extract_baseline",
    "compare_to_baseline",
    "load_baseline_from_ledger",
    "extract_load_baseline",
    "compare_load_to_baseline",
    "welch_slowdown",
    "GroupDelta",
    "LoadDelta",
    "RegressionReport",
    "LoadRegressionReport",
]

#: Schema history (tracked via SQLite ``PRAGMA user_version``):
#:
#: 1. initial layout
#: 2. fault-injection fields: ``outcome`` (success / failed /
#:    budget_exhausted / plain ``ok`` for non-fault runs) and ``n_faults``
#:    (injected faults that fired).
#: 3. the ``load_runs`` table: one row per archived load-generator
#:    replay (arrival config fingerprint, achieved vs offered rate,
#:    serialized per-stage quantile sketches, typed refusal counts,
#:    cost totals) — the load observatory's archive.
#:
#: Older databases are migrated in place on open (``ALTER TABLE`` adds the
#: new columns with their defaults); newer ones are rejected.
SCHEMA_VERSION = 3

_COLUMNS = (
    "recorded_at", "source", "fingerprint", "workflow", "family", "n_tasks",
    "algorithm", "budget", "sigma_ratio", "planned_makespan", "planned_cost",
    "within_budget_plan", "sim_makespan", "sim_cost", "success_rate",
    "n_reps", "n_vms", "sched_seconds", "elapsed_s", "trace_id", "version",
    "outcome", "n_faults", "extra",
)

_CREATE = f"""
CREATE TABLE IF NOT EXISTS runs (
    run_id             INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at        REAL NOT NULL,
    source             TEXT NOT NULL,
    fingerprint        TEXT NOT NULL DEFAULT '',
    workflow           TEXT NOT NULL DEFAULT '',
    family             TEXT NOT NULL DEFAULT '',
    n_tasks            INTEGER NOT NULL DEFAULT 0,
    algorithm          TEXT NOT NULL DEFAULT '',
    budget             REAL NOT NULL DEFAULT 0.0,
    sigma_ratio        REAL NOT NULL DEFAULT 0.0,
    planned_makespan   REAL NOT NULL DEFAULT 0.0,
    planned_cost       REAL NOT NULL DEFAULT 0.0,
    within_budget_plan INTEGER NOT NULL DEFAULT 1,
    sim_makespan       REAL,
    sim_cost           REAL,
    success_rate       REAL,
    n_reps             INTEGER NOT NULL DEFAULT 0,
    n_vms              INTEGER NOT NULL DEFAULT 0,
    sched_seconds      REAL NOT NULL DEFAULT 0.0,
    elapsed_s          REAL NOT NULL DEFAULT 0.0,
    trace_id           TEXT NOT NULL DEFAULT '',
    version            TEXT NOT NULL DEFAULT '',
    outcome            TEXT NOT NULL DEFAULT 'ok',
    n_faults           INTEGER NOT NULL DEFAULT 0,
    extra              TEXT NOT NULL DEFAULT '{{}}'
);
CREATE INDEX IF NOT EXISTS idx_runs_algorithm   ON runs (algorithm);
CREATE INDEX IF NOT EXISTS idx_runs_workflow    ON runs (workflow);
CREATE INDEX IF NOT EXISTS idx_runs_fingerprint ON runs (fingerprint);
CREATE INDEX IF NOT EXISTS idx_runs_recorded_at ON runs (recorded_at);
"""

_LOAD_COLUMNS = (
    "recorded_at", "label", "config_fingerprint", "sequence_fingerprint",
    "process", "target", "executor", "n_requests", "n_ok", "n_cached",
    "n_rejected", "n_errors", "refusals", "offered_rps", "achieved_rps",
    "duration_s", "latency_mean_s", "latency_std_s", "p50_s", "p95_s",
    "p99_s", "cost_total", "stages", "sketches", "version", "extra",
)

_CREATE_LOAD = """
CREATE TABLE IF NOT EXISTS load_runs (
    load_id              INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at          REAL NOT NULL,
    label                TEXT NOT NULL DEFAULT '',
    config_fingerprint   TEXT NOT NULL DEFAULT '',
    sequence_fingerprint TEXT NOT NULL DEFAULT '',
    process              TEXT NOT NULL DEFAULT 'poisson',
    target               TEXT NOT NULL DEFAULT 'inproc',
    executor             TEXT NOT NULL DEFAULT '',
    n_requests           INTEGER NOT NULL DEFAULT 0,
    n_ok                 INTEGER NOT NULL DEFAULT 0,
    n_cached             INTEGER NOT NULL DEFAULT 0,
    n_rejected           INTEGER NOT NULL DEFAULT 0,
    n_errors             INTEGER NOT NULL DEFAULT 0,
    refusals             TEXT NOT NULL DEFAULT '{}',
    offered_rps          REAL NOT NULL DEFAULT 0.0,
    achieved_rps         REAL NOT NULL DEFAULT 0.0,
    duration_s           REAL NOT NULL DEFAULT 0.0,
    latency_mean_s       REAL NOT NULL DEFAULT 0.0,
    latency_std_s        REAL NOT NULL DEFAULT 0.0,
    p50_s                REAL NOT NULL DEFAULT 0.0,
    p95_s                REAL NOT NULL DEFAULT 0.0,
    p99_s                REAL NOT NULL DEFAULT 0.0,
    cost_total           REAL NOT NULL DEFAULT 0.0,
    stages               TEXT NOT NULL DEFAULT '{}',
    sketches             TEXT NOT NULL DEFAULT '{}',
    version              TEXT NOT NULL DEFAULT '',
    extra                TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_load_runs_label
    ON load_runs (label);
CREATE INDEX IF NOT EXISTS idx_load_runs_config
    ON load_runs (config_fingerprint);
CREATE INDEX IF NOT EXISTS idx_load_runs_recorded_at
    ON load_runs (recorded_at);
"""


def _package_version() -> str:
    try:
        from repro import __version__

        return f"repro-{__version__}/py{sys.version_info[0]}.{sys.version_info[1]}"
    except Exception:  # pragma: no cover - import-order edge
        return f"py{sys.version_info[0]}.{sys.version_info[1]}"


@dataclass
class RunRow:
    """One archived run (see the module docstring for field semantics).

    ``sim_*`` fields are means over the run's Monte Carlo repetitions and
    stay ``None`` when the run was planned but never replayed. ``extra``
    carries free-form JSON diagnostics (e.g. the sweep runner's
    convergence series).
    """

    run_id: int = 0
    recorded_at: float = 0.0
    source: str = "service"
    fingerprint: str = ""
    workflow: str = ""
    family: str = ""
    n_tasks: int = 0
    algorithm: str = ""
    budget: float = 0.0
    sigma_ratio: float = 0.0
    planned_makespan: float = 0.0
    planned_cost: float = 0.0
    within_budget_plan: bool = True
    sim_makespan: Optional[float] = None
    sim_cost: Optional[float] = None
    success_rate: Optional[float] = None
    n_reps: int = 0
    n_vms: int = 0
    sched_seconds: float = 0.0
    elapsed_s: float = 0.0
    trace_id: str = ""
    version: str = ""
    outcome: str = "ok"
    n_faults: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def group_key(self) -> str:
        """Baseline grouping identity: ``family/n_tasks/algorithm``."""
        return f"{self.family or self.workflow}/{self.n_tasks}/{self.algorithm}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (one line of ``repro-exp ledger show``)."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRow":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        names = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown run row fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in data})


@dataclass
class LoadRunRow:
    """One archived load-generator replay (see ``repro.loadgen``).

    ``stages`` maps stage name to ``{count, p50, p95, p99}`` percentile
    summaries; ``sketches`` holds the full serialized
    :class:`~repro.obs.sketch.QuantileSketch` per stage (plus the
    end-to-end ``request`` sketch), so archived runs merge and re-query
    exactly. ``latency_mean_s`` / ``latency_std_s`` are *exact* sample
    statistics over every completed request — the inputs to the Welch
    tail-latency gate, same machinery as the makespan gate.
    """

    load_id: int = 0
    recorded_at: float = 0.0
    label: str = ""
    config_fingerprint: str = ""
    sequence_fingerprint: str = ""
    process: str = "poisson"
    target: str = "inproc"
    executor: str = ""
    n_requests: int = 0
    n_ok: int = 0
    n_cached: int = 0
    n_rejected: int = 0
    n_errors: int = 0
    refusals: Dict[str, int] = field(default_factory=dict)
    offered_rps: float = 0.0
    achieved_rps: float = 0.0
    duration_s: float = 0.0
    latency_mean_s: float = 0.0
    latency_std_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    cost_total: float = 0.0
    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    sketches: Dict[str, Any] = field(default_factory=dict)
    version: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def group_key(self) -> str:
        """Baseline grouping identity: the run's label (or config)."""
        return self.label or self.config_fingerprint

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadRunRow":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        names = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown load run fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in data})


class RunLedger:
    """SQLite-backed run archive (thread-safe; see module docstring).

    Parameters
    ----------
    path:
        Database file; ``":memory:"`` keeps the archive process-local
        (handy in tests). File databases are opened in WAL journal mode so
        independent writer *processes* append concurrently; within one
        process a single shared connection is serialized by a lock.
    bus:
        Optional :class:`~repro.obs.events.EventBus`; when set, every
        committed row is announced as a ``run.recorded`` event.
    """

    enabled = True

    def __init__(self, path: str = ":memory:", *, bus: Optional[EventBus] = None) -> None:
        self.path = path
        self.bus = bus
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            path, check_same_thread=False, timeout=30.0
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if path != ":memory:":
                # WAL lets a second process (CI sweep + service) append
                # while we read; busy_timeout rides out write bursts.
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            current = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if current > SCHEMA_VERSION:
                raise ValueError(
                    f"ledger {path!r} has schema version {current}, "
                    f"this build expects <= {SCHEMA_VERSION}"
                )
            # IF NOT EXISTS: creates the current layout on a fresh file,
            # no-op on an existing one (which _migrate then upgrades).
            self._conn.executescript(_CREATE)
            self._conn.executescript(_CREATE_LOAD)
            if 0 < current < SCHEMA_VERSION:
                self._migrate(current)
            if current != SCHEMA_VERSION:
                self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            self._conn.commit()

    def _migrate(self, current: int) -> None:
        """Upgrade an existing database from ``current`` to the latest schema.

        Each step is additive (``ALTER TABLE ... ADD COLUMN`` with a
        default), so v1 rows read back with the documented defaults and
        older readers are only stopped by the ``user_version`` bump.
        """
        if current <= 1:  # v1 -> v2: fault-injection outcome fields
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN outcome TEXT NOT NULL DEFAULT 'ok'"
            )
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN n_faults INTEGER NOT NULL DEFAULT 0"
            )
        # v2 -> v3 adds the load_runs table, which the _CREATE_LOAD
        # script above already created (IF NOT EXISTS) — nothing to
        # alter; the user_version bump alone stops older readers.

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record(self, row: RunRow) -> int:
        """Commit one row; returns its ``run_id`` (also set on ``row``)."""
        if not row.recorded_at:
            row.recorded_at = time.time()
        if not row.version:
            row.version = _package_version()
        encoded = {
            "within_budget_plan": int(row.within_budget_plan),
            "extra": json.dumps(row.extra, sort_keys=True),
        }
        values = [encoded.get(col, getattr(row, col)) for col in _COLUMNS]
        with self._lock:
            cursor = self._conn.execute(
                f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
                f"VALUES ({', '.join('?' * len(_COLUMNS))})",
                values,
            )
            self._conn.commit()
            row.run_id = int(cursor.lastrowid or 0)
        if self.bus is not None:
            self.bus.publish(
                RUN_RECORDED,
                run_id=row.run_id,
                source=row.source,
                algorithm=row.algorithm,
                workflow=row.workflow or row.family,
                fingerprint=row.fingerprint,
                trace_id=row.trace_id,
                sim_makespan=row.sim_makespan,
                sim_cost=row.sim_cost,
            )
        return row.run_id

    def record_load_run(self, row: LoadRunRow) -> int:
        """Commit one load-run row; returns its ``load_id``."""
        if not row.recorded_at:
            row.recorded_at = time.time()
        if not row.version:
            row.version = _package_version()
        encoded = {
            "refusals": json.dumps(row.refusals, sort_keys=True),
            "stages": json.dumps(row.stages, sort_keys=True),
            "sketches": json.dumps(row.sketches, sort_keys=True),
            "extra": json.dumps(row.extra, sort_keys=True),
        }
        values = [
            encoded.get(col, getattr(row, col)) for col in _LOAD_COLUMNS
        ]
        with self._lock:
            cursor = self._conn.execute(
                f"INSERT INTO load_runs ({', '.join(_LOAD_COLUMNS)}) "
                f"VALUES ({', '.join('?' * len(_LOAD_COLUMNS))})",
                values,
            )
            self._conn.commit()
            row.load_id = int(cursor.lastrowid or 0)
        if self.bus is not None:
            self.bus.publish(
                "load_run.recorded",
                load_id=row.load_id,
                label=row.label,
                config_fingerprint=row.config_fingerprint,
                n_requests=row.n_requests,
                achieved_rps=row.achieved_rps,
                p99_s=row.p99_s,
            )
        return row.load_id

    def prune(
        self,
        *,
        max_rows: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> int:
        """Delete old rows; returns how many were removed.

        ``max_age_days`` drops rows older than that many days;
        ``max_rows`` then keeps only the newest N. Both constraints may be
        combined; with neither, nothing is deleted. Both the ``runs`` table
        and the v3 ``load_runs`` table are pruned (``max_rows`` bounds each
        table independently). Long-lived service deployments call this
        periodically so ``runs.db`` stays bounded.
        """
        if max_rows is not None and max_rows < 0:
            raise ValueError(f"max_rows must be >= 0, got {max_rows}")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
        deleted = 0
        with self._lock:
            if max_age_days is not None:
                cutoff = time.time() - max_age_days * 86400.0
                for table in ("runs", "load_runs"):
                    cursor = self._conn.execute(
                        f"DELETE FROM {table} WHERE recorded_at < ?",
                        (cutoff,),
                    )
                    deleted += cursor.rowcount
            if max_rows is not None:
                for table, key in (("runs", "run_id"),
                                   ("load_runs", "load_id")):
                    cursor = self._conn.execute(
                        f"DELETE FROM {table} WHERE {key} NOT IN "
                        f"(SELECT {key} FROM {table} "
                        f"ORDER BY {key} DESC LIMIT ?)",
                        (int(max_rows),),
                    )
                    deleted += cursor.rowcount
            self._conn.commit()
        return deleted

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def run(self, run_id: int) -> RunRow:
        """The row with ``run_id``; raises ``KeyError`` when absent."""
        with self._lock:
            found = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if found is None:
            raise KeyError(f"no run {run_id} in ledger {self.path!r}")
        return self._decode(found)

    def runs(
        self,
        *,
        algorithm: Optional[str] = None,
        workflow: Optional[str] = None,
        fingerprint: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        limit: int = 100,
    ) -> List[RunRow]:
        """Newest-first query over the archive.

        ``workflow`` matches either the workflow name or the family
        column; ``since`` is an epoch-seconds lower bound; ``limit <= 0``
        means unbounded.
        """
        clauses, params = ["1=1"], []
        if algorithm is not None:
            clauses.append("algorithm = ?")
            params.append(algorithm)
        if workflow is not None:
            clauses.append("(workflow = ? OR family = ?)")
            params.extend([workflow, workflow])
        if fingerprint is not None:
            clauses.append("fingerprint = ?")
            params.append(fingerprint)
        if source is not None:
            clauses.append("source = ?")
            params.append(source)
        if since is not None:
            clauses.append("recorded_at >= ?")
            params.append(since)
        sql = (
            f"SELECT * FROM runs WHERE {' AND '.join(clauses)} "
            "ORDER BY run_id DESC"
        )
        if limit > 0:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            found = self._conn.execute(sql, params).fetchall()
        return [self._decode(r) for r in found]

    def count(self) -> int:
        """Total archived runs."""
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            )

    def load_run(self, load_id: int) -> LoadRunRow:
        """The load run with ``load_id``; raises ``KeyError`` when absent."""
        with self._lock:
            found = self._conn.execute(
                "SELECT * FROM load_runs WHERE load_id = ?", (load_id,)
            ).fetchone()
        if found is None:
            raise KeyError(f"no load run {load_id} in ledger {self.path!r}")
        return self._decode_load(found)

    def load_runs(
        self,
        *,
        label: Optional[str] = None,
        config_fingerprint: Optional[str] = None,
        since: Optional[float] = None,
        limit: int = 100,
    ) -> List[LoadRunRow]:
        """Newest-first query over archived load runs (``limit <= 0`` = all)."""
        clauses, params = ["1=1"], []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if config_fingerprint is not None:
            clauses.append("config_fingerprint = ?")
            params.append(config_fingerprint)
        if since is not None:
            clauses.append("recorded_at >= ?")
            params.append(since)
        sql = (
            f"SELECT * FROM load_runs WHERE {' AND '.join(clauses)} "
            "ORDER BY load_id DESC"
        )
        if limit > 0:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            found = self._conn.execute(sql, params).fetchall()
        return [self._decode_load(r) for r in found]

    def load_count(self) -> int:
        """Total archived load runs."""
        with self._lock:
            return int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM load_runs"
                ).fetchone()[0]
            )

    def writable(self) -> bool:
        """Whether the database currently accepts writes (healthz probe).

        Takes and immediately rolls back a write lock — cheap, and
        honest about read-only filesystems or a sibling process holding
        the database exclusively.
        """
        try:
            with self._lock:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute("ROLLBACK")
            return True
        except sqlite3.Error:
            return False

    def group_stats(
        self, *, latest_per_group: int = 0
    ) -> Dict[str, Dict[str, float]]:
        """Per ``family/n_tasks/algorithm`` group means over the archive.

        ``latest_per_group`` keeps only each group's newest N rows (0 =
        all rows). Only rows with simulated results participate in the
        ``makespan``/``cost``/``success_rate`` means; the planned numbers
        average over every row.
        """
        rows = self.runs(limit=0)
        grouped: Dict[str, List[RunRow]] = {}
        for row in rows:  # rows are newest-first
            bucket = grouped.setdefault(row.group_key(), [])
            if latest_per_group <= 0 or len(bucket) < latest_per_group:
                bucket.append(row)
        out: Dict[str, Dict[str, float]] = {}
        for key, bucket in sorted(grouped.items()):
            stats: Dict[str, float] = {
                "n_runs": float(len(bucket)),
                "planned_makespan": _mean(
                    [r.planned_makespan for r in bucket]
                ),
                "planned_cost": _mean([r.planned_cost for r in bucket]),
            }
            simulated = [r for r in bucket if r.sim_makespan is not None]
            if simulated:
                stats["makespan"] = _mean([r.sim_makespan for r in simulated])
                stats["cost"] = _mean(
                    [r.sim_cost for r in simulated if r.sim_cost is not None]
                )
                rates = [
                    r.success_rate
                    for r in simulated
                    if r.success_rate is not None
                ]
                if rates:  # no rate data at all must not read as 0% success
                    stats["success_rate"] = _mean(rates)
                pooled = _pool_sample_stats(
                    r.extra.get("makespan_stats") for r in simulated
                )
                if pooled is not None:
                    # Per-replication sample stats (written by sweeps and
                    # the service under extra["makespan_stats"]), pooled
                    # across rows — the inputs to the Welch gate.
                    stats["makespan_sample_mean"] = pooled[0]
                    stats["makespan_std"] = pooled[1]
                    stats["n_samples"] = float(pooled[2])
            out[key] = stats
        return out

    def _decode(self, found: sqlite3.Row) -> RunRow:
        data = dict(found)
        data["within_budget_plan"] = bool(data["within_budget_plan"])
        data["extra"] = json.loads(data["extra"]) if data["extra"] else {}
        return RunRow(**data)

    def _decode_load(self, found: sqlite3.Row) -> LoadRunRow:
        data = dict(found)
        for key in ("refusals", "stages", "sketches", "extra"):
            data[key] = json.loads(data[key]) if data[key] else {}
        return LoadRunRow(**data)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection; idempotent."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunLedger(path={self.path!r})"


class NullLedger:
    """Disabled ledger: the process-global default, every call a no-op."""

    enabled = False
    path = None
    bus = None

    def record(self, row: RunRow) -> int:
        """Discard the row."""
        return 0

    def record_load_run(self, row: LoadRunRow) -> int:
        """Discard the row."""
        return 0

    def prune(self, **kwargs: Any) -> int:
        """Nothing to prune."""
        return 0

    def run(self, run_id: int) -> RunRow:
        """Always absent."""
        raise KeyError(f"no run {run_id} (ledger disabled)")

    def runs(self, **query: Any) -> List[RunRow]:
        """Empty archive."""
        return []

    def load_run(self, load_id: int) -> LoadRunRow:
        """Always absent."""
        raise KeyError(f"no load run {load_id} (ledger disabled)")

    def load_runs(self, **query: Any) -> List[LoadRunRow]:
        """Empty archive."""
        return []

    def count(self) -> int:
        """Empty archive."""
        return 0

    def load_count(self) -> int:
        """Empty archive."""
        return 0

    def writable(self) -> bool:
        """Nothing to write to — trivially healthy."""
        return True

    def group_stats(self, **kwargs: Any) -> Dict[str, Dict[str, float]]:
        """Empty archive."""
        return {}

    def close(self) -> None:
        """Nothing to close."""


_NULL_LEDGER = NullLedger()
_current: Any = _NULL_LEDGER
_swap_lock = threading.Lock()


def get_ledger() -> Any:
    """The process-global ledger (a :class:`NullLedger` unless installed)."""
    return _current


def set_ledger(ledger: Optional[Any]) -> None:
    """Install ``ledger`` globally; ``None`` restores the null ledger."""
    global _current
    with _swap_lock:
        _current = ledger if ledger is not None else _NULL_LEDGER


class _UseLedger:
    __slots__ = ("_ledger", "_previous")

    def __init__(self, ledger: Any) -> None:
        self._ledger = ledger
        self._previous: Any = None

    def __enter__(self) -> Any:
        self._previous = get_ledger()
        set_ledger(self._ledger)
        return self._ledger

    def __exit__(self, *exc_info: Any) -> None:
        set_ledger(self._previous)


def use_ledger(ledger: Any) -> _UseLedger:
    """Scope-install a ledger: ``with use_ledger(RunLedger(path)): ...``."""
    return _UseLedger(ledger)


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------
def _mean(values: Sequence[Optional[float]]) -> float:
    cleaned = [v for v in values if v is not None]
    return sum(cleaned) / len(cleaned) if cleaned else 0.0


def _pool_sample_stats(
    per_row: Any,
) -> Optional[Tuple[float, float, int]]:
    """Pool per-row ``{mean, std, n}`` sample stats into ``(mean, std, N)``.

    Rows without stats (old databases, single-shot runs) are skipped; the
    pooled variance recombines each row's sum/sum-of-squares exactly, so
    pooling K rows of n reps equals one row of K·n reps.
    """
    parts = [
        s for s in per_row
        if isinstance(s, Mapping) and int(s.get("n", 0) or 0) >= 1
    ]
    if not parts:
        return None
    total_n = sum(int(s["n"]) for s in parts)
    mean = sum(float(s["mean"]) * int(s["n"]) for s in parts) / total_n
    if total_n < 2:
        return mean, 0.0, total_n
    # Σx² per row from (n-1)·var + n·mean²; then var of the union.
    sum_sq = sum(
        (int(s["n"]) - 1) * float(s.get("std", 0.0) or 0.0) ** 2
        + int(s["n"]) * float(s["mean"]) ** 2
        for s in parts
    )
    var = max((sum_sq - total_n * mean * mean) / (total_n - 1), 0.0)
    return mean, math.sqrt(var), total_n


def _t_quantile(p: float, df: float) -> float:
    """Upper ``p`` quantile of Student's t with ``df`` degrees of freedom.

    Cornish–Fisher expansion around the normal quantile — accurate to a
    few 1e-3 for df ≥ 3, plenty for a CI gate, and stdlib-only (no scipy).
    """
    z = statistics.NormalDist().inv_cdf(p)
    if df <= 0 or math.isinf(df):
        return z
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    return z + g1 / df + g2 / df ** 2


def welch_slowdown(
    baseline: Tuple[float, float, int],
    current: Tuple[float, float, int],
    *,
    confidence: float = 0.95,
) -> Tuple[bool, float, float]:
    """One-sided Welch test for "current is slower than baseline".

    ``baseline``/``current`` are ``(mean, std, n)`` triples. Returns
    ``(significant, t_stat, t_crit)``: significant is True only when the
    current mean exceeds the baseline mean by more than sampling noise
    explains at the given one-sided confidence level. Degenerate inputs
    (n < 2 on either side, or zero variance on both) never test as
    significant — callers should fall back to a fixed threshold.
    """
    mb, sb, nb = baseline
    mc, sc, nc = current
    if nb < 2 or nc < 2:
        return False, 0.0, math.inf
    vb, vc = sb * sb / nb, sc * sc / nc
    se = math.sqrt(vb + vc)
    if se <= 0.0:  # both sides exactly constant: no noise model to test
        return False, 0.0, math.inf
    t_stat = (mc - mb) / se
    # Welch–Satterthwaite degrees of freedom.
    df = (vb + vc) ** 2 / (vb ** 2 / (nb - 1) + vc ** 2 / (nc - 1))
    t_crit = _t_quantile(confidence, df)
    return t_stat > t_crit, t_stat, t_crit


def baseline_from_ledger(
    ledger: RunLedger, *, latest_per_group: int = 0
) -> Dict[str, Dict[str, float]]:
    """Fold the ledger into a baseline payload for ``BENCH_*.json``.

    The result maps ``family/n_tasks/algorithm`` group keys to their mean
    simulated makespan/cost and success rate — store it under a
    ``"ledger_baseline"`` key.
    """
    return {
        key: stats
        for key, stats in ledger.group_stats(
            latest_per_group=latest_per_group
        ).items()
        if "makespan" in stats
    }


@dataclass(frozen=True)
class GroupDelta:
    """One baseline group re-measured against the current ledger."""

    group: str
    baseline_makespan: float
    current_makespan: float
    baseline_cost: float
    current_cost: float
    n_runs: int
    baseline_success: float = 1.0
    current_success: float = 1.0
    #: Welch-test annotations; ``stat_tested`` stays False when either
    #: side lacked usable sample stats and the fixed threshold judged.
    stat_tested: bool = False
    t_stat: float = 0.0
    t_crit: float = 0.0

    @property
    def makespan_change(self) -> float:
        """Fractional makespan change (+0.2 = 20% slower)."""
        if self.baseline_makespan <= 0.0:
            return 0.0
        return self.current_makespan / self.baseline_makespan - 1.0

    @property
    def cost_change(self) -> float:
        """Fractional cost change (+0.2 = 20% more expensive)."""
        if self.baseline_cost <= 0.0:
            return 0.0
        return self.current_cost / self.baseline_cost - 1.0

    @property
    def success_change(self) -> float:
        """Absolute success-rate change (-0.1 = 10 points fewer successes)."""
        return self.current_success - self.baseline_success


@dataclass
class RegressionReport:
    """Outcome of :func:`compare_to_baseline` (drives the CI exit code)."""

    deltas: List[GroupDelta] = field(default_factory=list)
    regressions: List[GroupDelta] = field(default_factory=list)
    missing_groups: List[str] = field(default_factory=list)
    makespan_threshold: float = 0.10
    cost_threshold: float = 0.10
    success_threshold: float = 0.05
    stat: bool = False
    confidence: float = 0.95

    @property
    def ok(self) -> bool:
        """True when no group regressed and at least one was compared."""
        return not self.regressions and bool(self.deltas)

    def render(self) -> str:
        """Human-readable table for the CLI."""
        lines = [
            f"{'group':<40s} {'makespan':>10s} {'Δ%':>8s} "
            f"{'cost':>10s} {'Δ%':>8s} {'succ':>6s} {'Δpts':>6s}  verdict"
        ]
        for d in self.deltas:
            verdict = "REGRESSED" if d in self.regressions else "ok"
            if d.stat_tested:
                verdict += f" (t={d.t_stat:+.2f} vs {d.t_crit:.2f})"
            lines.append(
                f"{d.group:<40s} {d.current_makespan:>10.2f} "
                f"{100 * d.makespan_change:>+7.2f}% "
                f"{d.current_cost:>10.4f} {100 * d.cost_change:>+7.2f}% "
                f"{d.current_success:>6.2f} {100 * d.success_change:>+5.1f}  "
                f"{verdict}"
            )
        for group in self.missing_groups:
            lines.append(f"{group:<40s} {'—':>10s} {'—':>8s} "
                         f"{'—':>10s} {'—':>8s} {'—':>6s} {'—':>6s}  "
                         f"missing from ledger")
        gate = (
            f"makespan: Welch test at {100 * self.confidence:.0f}% "
            f"one-sided confidence (fallback +"
            f"{100 * self.makespan_threshold:.0f}%)"
            if self.stat
            else f"makespan +{100 * self.makespan_threshold:.0f}%"
        )
        lines.append(
            f"{len(self.deltas)} group(s) compared, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.missing_groups)} missing "
            f"({gate}, "
            f"cost +{100 * self.cost_threshold:.0f}%, "
            f"success -{100 * self.success_threshold:.0f}pts)"
        )
        return "\n".join(lines)


def extract_baseline(document: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    """The ledger baseline inside a ``BENCH_*.json`` document.

    Accepts either a document with a ``"ledger_baseline"`` key or a bare
    group → stats mapping. Raises ``ValueError`` when neither shape fits.
    """
    payload = document.get("ledger_baseline", document)
    if not isinstance(payload, Mapping) or not payload:
        raise ValueError("baseline document has no 'ledger_baseline' groups")
    for key, stats in payload.items():
        if not isinstance(stats, Mapping) or "makespan" not in stats:
            raise ValueError(
                f"baseline group {key!r} lacks a 'makespan' entry — "
                "not a ledger baseline"
            )
    return {k: dict(v) for k, v in payload.items()}


def _sample_triple(
    stats: Mapping[str, float]
) -> Optional[Tuple[float, float, int]]:
    """``(mean, std, n)`` from a group-stats mapping, if it carries them."""
    n = int(stats.get("n_samples", 0) or 0)
    if n < 2 or "makespan_std" not in stats:
        return None
    mean = float(stats.get("makespan_sample_mean", stats.get("makespan", 0.0)))
    return mean, float(stats["makespan_std"]), n


def compare_to_baseline(
    ledger: RunLedger,
    baseline: Mapping[str, Mapping[str, float]],
    *,
    makespan_threshold: float = 0.10,
    cost_threshold: float = 0.10,
    success_threshold: float = 0.05,
    stat: bool = False,
    confidence: float = 0.95,
) -> RegressionReport:
    """Re-measure the ledger's latest runs against ``baseline`` groups.

    For every baseline group, the current value is the mean over the
    group's newest ``n_runs`` ledger rows (as many as the baseline itself
    averaged). A group regresses when its makespan grows by more than
    ``makespan_threshold`` (fractional), its cost by more than
    ``cost_threshold``, or its success rate drops by more than
    ``success_threshold`` (absolute points — the fault-resilience gate).
    Groups absent from the ledger are reported, not failed — the caller
    decides (the CLI fails only when *nothing* matched).

    ``stat=True`` replaces the fixed makespan threshold with a one-sided
    Welch test (:func:`welch_slowdown`) at ``confidence`` wherever both
    sides carry pooled Monte Carlo sample stats (``makespan_std`` /
    ``n_samples``, written by sweeps and the service): the gate then fails
    only on *statistically significant* slowdowns, so a noisy-but-flat
    group with wide replication variance no longer trips CI. Groups
    without sample stats on either side keep the fixed threshold. The
    cost and success gates are unchanged either way.
    """
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
    report = RegressionReport(
        makespan_threshold=makespan_threshold,
        cost_threshold=cost_threshold,
        success_threshold=success_threshold,
        stat=stat,
        confidence=confidence,
    )
    stats_by_depth: Dict[int, Dict[str, Dict[str, float]]] = {}
    for group, base in sorted(baseline.items()):
        n_runs = int(base.get("n_runs", 0)) or 0
        if n_runs not in stats_by_depth:
            stats_by_depth[n_runs] = ledger.group_stats(
                latest_per_group=n_runs
            )
        current = stats_by_depth[n_runs].get(group)
        if current is None or "makespan" not in current:
            report.missing_groups.append(group)
            continue
        stat_tested = False
        t_stat = t_crit = 0.0
        makespan_regressed: Optional[bool] = None
        if stat:
            base_triple = _sample_triple(base)
            cur_triple = _sample_triple(current)
            if base_triple is not None and cur_triple is not None:
                significant, t_stat, t_crit = welch_slowdown(
                    base_triple, cur_triple, confidence=confidence
                )
                if math.isfinite(t_crit):
                    stat_tested = True
                    makespan_regressed = significant
        delta = GroupDelta(
            group=group,
            baseline_makespan=float(base["makespan"]),
            current_makespan=float(current["makespan"]),
            baseline_cost=float(base.get("cost", 0.0)),
            current_cost=float(current.get("cost", 0.0)),
            n_runs=int(current.get("n_runs", 0)),
            baseline_success=float(base.get("success_rate", 1.0)),
            current_success=float(current.get("success_rate", 1.0)),
            stat_tested=stat_tested,
            t_stat=t_stat,
            t_crit=t_crit if stat_tested else 0.0,
        )
        if makespan_regressed is None:
            makespan_regressed = delta.makespan_change > makespan_threshold
        report.deltas.append(delta)
        if (
            makespan_regressed
            or delta.cost_change > cost_threshold
            or -delta.success_change > success_threshold
        ):
            report.regressions.append(delta)
    return report


# ----------------------------------------------------------------------
# load-run regression gate
# ----------------------------------------------------------------------
def _pool_load_rows(rows: Sequence[LoadRunRow]) -> Dict[str, float]:
    """Fold one group's load rows into baseline stats.

    Rates and percentiles are plain means over the rows; latency sample
    stats pool exactly via :func:`_pool_sample_stats` (each row carries
    the exact mean/std over its completed requests).
    """
    stats: Dict[str, float] = {
        "n_runs": float(len(rows)),
        "offered_rps": _mean([r.offered_rps for r in rows]),
        "achieved_rps": _mean([r.achieved_rps for r in rows]),
        "p50_s": _mean([r.p50_s for r in rows]),
        "p95_s": _mean([r.p95_s for r in rows]),
        "p99_s": _mean([r.p99_s for r in rows]),
        "cost_total": _mean([r.cost_total for r in rows]),
    }
    pooled = _pool_sample_stats(
        {"mean": r.latency_mean_s, "std": r.latency_std_s,
         "n": r.n_ok + r.n_cached}
        for r in rows
    )
    if pooled is not None:
        stats["latency_mean_s"] = pooled[0]
        stats["latency_std_s"] = pooled[1]
        stats["n_samples"] = float(pooled[2])
    return stats


def load_baseline_from_ledger(
    ledger: RunLedger, *, latest_per_group: int = 0
) -> Dict[str, Dict[str, float]]:
    """Fold archived load runs into a ``"load_baseline"`` payload.

    Groups by each row's label (or config fingerprint when unlabeled);
    ``latest_per_group`` keeps only each group's newest N rows.
    """
    grouped: Dict[str, List[LoadRunRow]] = {}
    for row in ledger.load_runs(limit=0):  # newest-first
        bucket = grouped.setdefault(row.group_key(), [])
        if latest_per_group <= 0 or len(bucket) < latest_per_group:
            bucket.append(row)
    return {
        key: _pool_load_rows(bucket)
        for key, bucket in sorted(grouped.items())
    }


def extract_load_baseline(
    document: Mapping[str, Any]
) -> Dict[str, Dict[str, float]]:
    """The ``"load_baseline"`` groups inside a ``BENCH_*.json`` document.

    Raises ``ValueError`` when the document has none (callers treat that
    as "no load gate configured", not an error).
    """
    payload = document.get("load_baseline")
    if not isinstance(payload, Mapping) or not payload:
        raise ValueError("baseline document has no 'load_baseline' groups")
    for key, stats in payload.items():
        if not isinstance(stats, Mapping) or "achieved_rps" not in stats:
            raise ValueError(
                f"load baseline group {key!r} lacks an 'achieved_rps' "
                "entry — not a load baseline"
            )
    return {k: dict(v) for k, v in payload.items()}


@dataclass(frozen=True)
class LoadDelta:
    """One load-baseline group re-measured against the current ledger."""

    group: str
    baseline_rps: float
    current_rps: float
    baseline_p99_s: float
    current_p99_s: float
    n_runs: int
    stat_tested: bool = False
    t_stat: float = 0.0
    t_crit: float = 0.0

    @property
    def rps_change(self) -> float:
        """Fractional throughput change (-0.2 = 20% slower)."""
        if self.baseline_rps <= 0.0:
            return 0.0
        return self.current_rps / self.baseline_rps - 1.0

    @property
    def p99_change(self) -> float:
        """Fractional p99 change (+0.2 = 20% longer tail)."""
        if self.baseline_p99_s <= 0.0:
            return 0.0
        return self.current_p99_s / self.baseline_p99_s - 1.0


@dataclass
class LoadRegressionReport:
    """Outcome of :func:`compare_load_to_baseline`."""

    deltas: List[LoadDelta] = field(default_factory=list)
    regressions: List[LoadDelta] = field(default_factory=list)
    missing_groups: List[str] = field(default_factory=list)
    rps_threshold: float = 0.15
    p99_threshold: float = 0.25
    stat: bool = False
    confidence: float = 0.95

    @property
    def ok(self) -> bool:
        """True when no group regressed and at least one was compared."""
        return not self.regressions and bool(self.deltas)

    def render(self) -> str:
        """Human-readable table for the CLI."""
        lines = [
            f"{'load group':<32s} {'rps':>9s} {'Δ%':>8s} "
            f"{'p99(s)':>9s} {'Δ%':>8s}  verdict"
        ]
        for d in self.deltas:
            verdict = "REGRESSED" if d in self.regressions else "ok"
            if d.stat_tested:
                verdict += f" (t={d.t_stat:+.2f} vs {d.t_crit:.2f})"
            lines.append(
                f"{d.group:<32.32s} {d.current_rps:>9.1f} "
                f"{100 * d.rps_change:>+7.2f}% "
                f"{d.current_p99_s:>9.4f} {100 * d.p99_change:>+7.2f}%  "
                f"{verdict}"
            )
        for group in self.missing_groups:
            lines.append(f"{group:<32.32s} {'—':>9s} {'—':>8s} "
                         f"{'—':>9s} {'—':>8s}  missing from ledger")
        tail_gate = (
            f"latency: Welch test at {100 * self.confidence:.0f}% "
            f"one-sided confidence (p99 cap +{100 * self.p99_threshold:.0f}%)"
            if self.stat
            else f"p99 +{100 * self.p99_threshold:.0f}%"
        )
        lines.append(
            f"{len(self.deltas)} load group(s) compared, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.missing_groups)} missing "
            f"(throughput -{100 * self.rps_threshold:.0f}%, {tail_gate})"
        )
        return "\n".join(lines)


def _load_sample_triple(
    stats: Mapping[str, float]
) -> Optional[Tuple[float, float, int]]:
    n = int(stats.get("n_samples", 0) or 0)
    if n < 2 or "latency_std_s" not in stats:
        return None
    return (float(stats.get("latency_mean_s", 0.0)),
            float(stats["latency_std_s"]), n)


def compare_load_to_baseline(
    ledger: RunLedger,
    baseline: Mapping[str, Mapping[str, float]],
    *,
    rps_threshold: float = 0.15,
    p99_threshold: float = 0.25,
    stat: bool = False,
    confidence: float = 0.95,
) -> LoadRegressionReport:
    """Re-measure archived load runs against ``baseline`` groups.

    A group regresses when its achieved throughput drops by more than
    ``rps_threshold`` (fractional) or its p99 grows by more than
    ``p99_threshold``. ``stat=True`` additionally runs the one-sided
    Welch test on the exact latency sample stats — a statistically
    significant mean-latency slowdown regresses even under the p99 cap,
    and mirrors the ``ledger regress --stat`` makespan contract.
    """
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
    report = LoadRegressionReport(
        rps_threshold=rps_threshold,
        p99_threshold=p99_threshold,
        stat=stat,
        confidence=confidence,
    )
    grouped: Dict[str, List[LoadRunRow]] = {}
    for row in ledger.load_runs(limit=0):
        grouped.setdefault(row.group_key(), []).append(row)
    for group, base in sorted(baseline.items()):
        rows = grouped.get(group)
        if not rows:
            report.missing_groups.append(group)
            continue
        n_runs = int(base.get("n_runs", 0)) or 0
        if n_runs > 0:
            rows = rows[:n_runs]  # newest-first, match the baseline depth
        current = _pool_load_rows(rows)
        stat_tested = False
        t_stat = t_crit = 0.0
        latency_regressed = False
        if stat:
            base_triple = _load_sample_triple(base)
            cur_triple = _load_sample_triple(current)
            if base_triple is not None and cur_triple is not None:
                significant, t_stat, t_crit = welch_slowdown(
                    base_triple, cur_triple, confidence=confidence
                )
                if math.isfinite(t_crit):
                    stat_tested = True
                    latency_regressed = significant
        delta = LoadDelta(
            group=group,
            baseline_rps=float(base.get("achieved_rps", 0.0)),
            current_rps=float(current.get("achieved_rps", 0.0)),
            baseline_p99_s=float(base.get("p99_s", 0.0)),
            current_p99_s=float(current.get("p99_s", 0.0)),
            n_runs=len(rows),
            stat_tested=stat_tested,
            t_stat=t_stat,
            t_crit=t_crit if stat_tested else 0.0,
        )
        report.deltas.append(delta)
        if (
            -delta.rps_change > rps_threshold
            or delta.p99_change > p99_threshold
            or latency_regressed
        ):
            report.regressions.append(delta)
    return report
