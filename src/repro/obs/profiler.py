"""Sampling stack profiler with collapsed-stack (flamegraph) export.

Answers "which frames burn the CPU" for the hot paths the ROADMAP's
vectorization work targets, without instrumenting any code. A daemon
thread wakes every ``interval_s`` and snapshots every Python thread's
stack via :func:`sys._current_frames` — unlike a ``SIGPROF``/``ITIMER``
sampler this sees worker *threads* too (the service thread pool), works
on any platform, and needs no signal handler in the main thread. The
cost is granularity: samples are wall-clock ticks of whatever held the
GIL, which is exactly the "where did the time go" answer wanted here.

Output formats:

- :meth:`SamplingProfiler.collapsed` — Brendan Gregg collapsed-stack
  lines (``root;child;leaf 42``), directly consumable by
  ``flamegraph.pl`` or speedscope;
- :meth:`SamplingProfiler.top` — frames ranked by self samples with
  cumulative counts, printed by ``repro-exp profile``.

Limitations: pure-Python frames only (C extensions appear as their
calling frame), and child *processes* are not sampled — profile with
``--workers 0`` to see compute frames inline, which is what
``repro-exp profile`` does by default.
"""

from __future__ import annotations

import os.path
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler"]


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    return (f"{code.co_name} "
            f"({os.path.basename(code.co_filename)}:{frame.f_lineno})")


class SamplingProfiler:
    """Wall-clock sampling profiler over all Python threads.

    Use as a context manager::

        with SamplingProfiler(interval_s=0.005) as prof:
            expensive_work()
        print("\\n".join(prof.collapsed()))

    Parameters
    ----------
    interval_s:
        Target sampling period; 5 ms ≈ 200 Hz costs well under 1 % on
        the workloads in ``benchmarks/``.
    max_depth:
        Stack frames kept per sample (deepest first are dropped).
    """

    def __init__(self, interval_s: float = 0.005, *,
                 max_depth: int = 64) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0          # stacks recorded (per thread)
        self.n_ticks = 0            # sampler wakeups
        self.started_at: Optional[float] = None
        self.duration_s = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Start the sampler thread; returns self (restart not allowed)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and record the profiled duration; idempotent."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.started_at is not None:
            self.duration_s = time.perf_counter() - self.started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            now_stacks: List[Tuple[str, ...]] = []
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                if stack:
                    # f_back walks leaf -> root; collapsed wants
                    # root-first.
                    now_stacks.append(tuple(reversed(stack)))
            with self._lock:
                self.n_ticks += 1
                for stack in now_stacks:
                    self.samples[stack] = self.samples.get(stack, 0) + 1
                    self.n_samples += 1

    # ------------------------------------------------------------------
    def collapsed(self) -> List[str]:
        """Collapsed-stack lines, lexically sorted for determinism."""
        with self._lock:
            items = sorted(self.samples.items())
        return [f"{';'.join(stack)} {count}" for stack, count in items]

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to ``path``; returns the line count."""
        lines = self.collapsed()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def top(self, n: int = 15) -> List[Dict[str, Any]]:
        """Frames ranked by self samples (leaf time), with cumulative.

        ``self`` counts samples where the frame was the leaf;
        ``cumulative`` counts samples where it appears anywhere on the
        stack (counted once per sample).
        """
        with self._lock:
            samples = dict(self.samples)
            total = self.n_samples
        self_counts: Dict[str, int] = {}
        cum_counts: Dict[str, int] = {}
        for stack, count in samples.items():
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for label in set(stack):
                cum_counts[label] = cum_counts.get(label, 0) + count
        ranked = sorted(
            cum_counts,
            key=lambda label: (-self_counts.get(label, 0),
                               -cum_counts[label], label),
        )
        out: List[Dict[str, Any]] = []
        for label in ranked[:n]:
            self_n = self_counts.get(label, 0)
            cum_n = cum_counts[label]
            out.append({
                "frame": label,
                "self": self_n,
                "cumulative": cum_n,
                "self_pct": 100.0 * self_n / total if total else 0.0,
                "cumulative_pct": 100.0 * cum_n / total if total else 0.0,
            })
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Summary payload recorded by benchmarks."""
        with self._lock:
            return {
                "n_samples": self.n_samples,
                "n_ticks": self.n_ticks,
                "n_stacks": len(self.samples),
                "interval_s": self.interval_s,
                "duration_s": self.duration_s,
            }
