"""Declarative SLO targets with multi-window burn rates.

An :class:`SLOTarget` declares what "good" means for a request —
either a latency bound (``kind="latency"``: good iff the request's
wall time is at or under ``threshold_s``) or plain success
(``kind="success_rate"``). The :class:`SLOMonitor` owned by the
service engine feeds every finished request into:

- one :class:`~repro.obs.sketch.QuantileSketch` per request stage plus
  one for end-to-end wall time, backing the per-stage p50/p95/p99
  gauges on ``/metrics`` and ``/v1/slo``; and
- per-target good/bad counters over several look-back windows
  (5 min / 1 h / 6 h by default), from which the standard burn rate is
  derived: ``burn = bad_fraction / (1 - target)``. Burn 1.0 spends the
  error budget exactly at the sustainable pace; a 99.9 % target burning
  at 14.4 over the short window pages in classic multi-window alerting.

Window counters are rings of coarse interval buckets (10 s resolution
by default), so memory is O(windows × slots) regardless of traffic.
The monitor is thread-safe; the sketches themselves are mergeable and
deterministic (see :mod:`repro.obs.sketch`), which is what lets shard-
local sketches fold into identical percentiles at any worker count.

:func:`report_from_rows` computes the same report offline from ledger
rows (``repro-exp slo --db``), windowing on ``recorded_at``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from .sketch import DEFAULT_ALPHA, QuantileSketch

__all__ = [
    "SLOTarget", "SLOMonitor", "DEFAULT_TARGETS", "DEFAULT_WINDOWS_S",
    "report_from_rows",
]

#: Look-back windows (seconds) for burn-rate computation.
DEFAULT_WINDOWS_S = (300.0, 3600.0, 21600.0)

_KINDS = ("latency", "success_rate")


@dataclass(frozen=True)
class SLOTarget:
    """One service-level objective.

    ``target`` is the demanded good fraction (e.g. ``0.99``); the error
    budget is ``1 - target``. ``threshold_s`` is required for
    ``kind="latency"`` and ignored otherwise.
    """

    name: str
    kind: str
    target: float
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and (
                self.threshold_s is None or self.threshold_s <= 0.0):
            raise ValueError("latency targets need threshold_s > 0")

    def is_good(self, *, duration_s: float, success: bool) -> bool:
        """Whether one request counts toward this objective's good side."""
        if self.kind == "success_rate":
            return success
        return success and duration_s <= float(self.threshold_s)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``threshold_s`` only for latency targets)."""
        out: Dict[str, Any] = {
            "name": self.name, "kind": self.kind, "target": self.target,
        }
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        return out


#: Engine defaults: interactive latency plus availability.
DEFAULT_TARGETS: Tuple[SLOTarget, ...] = (
    SLOTarget(name="latency_fast", kind="latency", target=0.95,
              threshold_s=2.0),
    SLOTarget(name="latency_tail", kind="latency", target=0.99,
              threshold_s=10.0),
    SLOTarget(name="availability", kind="success_rate", target=0.999),
)


class _WindowCounter:
    """Good/bad counts over a sliding window (ring of interval slots)."""

    __slots__ = ("span_s", "resolution_s", "n_slots", "_good", "_bad",
                 "_epochs")

    def __init__(self, span_s: float, resolution_s: float) -> None:
        self.span_s = span_s
        self.resolution_s = resolution_s
        self.n_slots = max(int(math.ceil(span_s / resolution_s)), 1)
        self._good = [0] * self.n_slots
        self._bad = [0] * self.n_slots
        self._epochs = [-1] * self.n_slots

    def add(self, now: float, good: bool) -> None:
        epoch = int(now // self.resolution_s)
        i = epoch % self.n_slots
        if self._epochs[i] != epoch:
            self._good[i] = 0
            self._bad[i] = 0
            self._epochs[i] = epoch
        if good:
            self._good[i] += 1
        else:
            self._bad[i] += 1

    def totals(self, now: float) -> Tuple[int, int]:
        current = int(now // self.resolution_s)
        oldest = current - self.n_slots + 1
        good = bad = 0
        for i in range(self.n_slots):
            if oldest <= self._epochs[i] <= current:
                good += self._good[i]
                bad += self._bad[i]
        return good, bad


def _burn(good: int, bad: int, target: float) -> Dict[str, Any]:
    total = good + bad
    bad_fraction = bad / total if total else 0.0
    burn_rate = bad_fraction / (1.0 - target)
    return {
        "good": good, "bad": bad, "total": total,
        "bad_fraction": bad_fraction, "burn_rate": burn_rate,
        "budget_exhausted": burn_rate >= 1.0 and total > 0,
    }


class SLOMonitor:
    """Thread-safe per-stage percentile + burn-rate accumulator."""

    def __init__(
        self,
        targets: Optional[Sequence[SLOTarget]] = None,
        *,
        windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
        resolution_s: float = 10.0,
        alpha: float = DEFAULT_ALPHA,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.targets: Tuple[SLOTarget, ...] = tuple(
            DEFAULT_TARGETS if targets is None else targets)
        self.windows_s: Tuple[float, ...] = tuple(windows_s)
        self.alpha = alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._request_sketch = QuantileSketch(alpha=alpha)
        self._stage_sketches: Dict[str, QuantileSketch] = {}
        self._counters: Dict[str, Dict[float, _WindowCounter]] = {
            t.name: {w: _WindowCounter(w, resolution_s)
                     for w in self.windows_s}
            for t in self.targets
        }
        self._observed = 0
        self._failures = 0

    # ------------------------------------------------------------------
    def observe_request(
        self,
        *,
        duration_s: float,
        success: bool,
        stages: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Fold one finished request into sketches and burn windows."""
        now = self._clock()
        with self._lock:
            self._observed += 1
            if not success:
                self._failures += 1
            self._request_sketch.add(duration_s)
            if stages:
                for stage, seconds in stages.items():
                    sketch = self._stage_sketches.get(stage)
                    if sketch is None:
                        sketch = QuantileSketch(alpha=self.alpha)
                        self._stage_sketches[stage] = sketch
                    sketch.add(seconds)
            for target in self.targets:
                good = target.is_good(
                    duration_s=duration_s, success=success)
                for counter in self._counters[target.name].values():
                    counter.add(now, good)

    def merge_stage_sketch(self, stage: str,
                           payload: Mapping[str, Any]) -> None:
        """Fold a serialized shard sketch into a stage (worker merges)."""
        incoming = QuantileSketch.from_dict(payload)
        with self._lock:
            sketch = self._stage_sketches.get(stage)
            if sketch is None:
                self._stage_sketches[stage] = incoming
            else:
                sketch.merge(incoming)

    # ------------------------------------------------------------------
    def stage_percentiles(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {count, p50, p95, p99}}`` including ``request``."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for name in sorted(self._stage_sketches):
                sketch = self._stage_sketches[name]
                pcts = sketch.percentiles()
                if pcts:
                    out[name] = {"count": sketch.count, **pcts}
            pcts = self._request_sketch.percentiles()
            if pcts:
                out["request"] = {
                    "count": self._request_sketch.count, **pcts}
            return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready report for ``GET /v1/slo`` and ``stats()``."""
        stages = self.stage_percentiles()
        now = self._clock()
        with self._lock:
            targets: List[Dict[str, Any]] = []
            for target in self.targets:
                windows = {
                    _window_label(w): _burn(
                        *self._counters[target.name][w].totals(now),
                        target.target)
                    for w in self.windows_s
                }
                targets.append({**target.to_dict(), "windows": windows})
            return {
                "observed": self._observed,
                "failures": self._failures,
                "windows_s": list(self.windows_s),
                "alpha": self.alpha,
                "stages": stages,
                "targets": targets,
            }


def _window_label(span_s: float) -> str:
    span = int(span_s)
    if span % 3600 == 0:
        return f"{span // 3600}h"
    if span % 60 == 0:
        return f"{span // 60}m"
    return f"{span}s"


# ----------------------------------------------------------------------
def report_from_rows(
    rows: Iterable[Any],
    *,
    targets: Optional[Sequence[SLOTarget]] = None,
    windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
    alpha: float = DEFAULT_ALPHA,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Offline SLO report from ledger rows (``repro-exp slo --db``).

    Rows are :class:`~repro.obs.ledger.RunRow` objects (or dicts with
    the same fields); only rows whose ``extra["stages"]`` was stamped
    by the service contribute stage percentiles, while every row
    contributes to availability. Windows are anchored at ``now``
    (default: the newest ``recorded_at`` seen).
    """
    chosen = tuple(DEFAULT_TARGETS if targets is None else targets)
    parsed: List[Tuple[float, float, bool, Dict[str, float]]] = []
    for row in rows:
        get = (row.get if isinstance(row, Mapping)
               else lambda k, _r=row: getattr(_r, k, None))
        recorded_at = float(get("recorded_at") or 0.0)
        outcome = str(get("outcome") or "ok")
        extra = get("extra") or {}
        stage_info = extra.get("stages") or {}
        stages = {
            str(k): float(v)
            for k, v in dict(stage_info.get("stages", {})).items()
        }
        wall = stage_info.get("wall_s")
        duration = float(wall) if wall is not None else sum(stages.values())
        success = outcome not in ("failed", "error", "budget_exceeded")
        parsed.append((recorded_at, duration, success, stages))

    anchor = now
    if anchor is None:
        anchor = max((p[0] for p in parsed), default=0.0)

    request_sketch = QuantileSketch(alpha=alpha)
    stage_sketches: Dict[str, QuantileSketch] = {}
    for _, duration, _, stages in parsed:
        request_sketch.add(duration)
        for stage, seconds in stages.items():
            stage_sketches.setdefault(
                stage, QuantileSketch(alpha=alpha)).add(seconds)

    stages_out: Dict[str, Dict[str, float]] = {}
    for name in sorted(stage_sketches):
        pcts = stage_sketches[name].percentiles()
        if pcts:
            stages_out[name] = {
                "count": stage_sketches[name].count, **pcts}
    pcts = request_sketch.percentiles()
    if pcts:
        stages_out["request"] = {"count": request_sketch.count, **pcts}

    targets_out: List[Dict[str, Any]] = []
    for target in chosen:
        windows: Dict[str, Any] = {}
        for span in windows_s:
            good = bad = 0
            for recorded_at, duration, success, _ in parsed:
                if recorded_at < anchor - span:
                    continue
                if target.is_good(duration_s=duration, success=success):
                    good += 1
                else:
                    bad += 1
            windows[_window_label(span)] = _burn(good, bad, target.target)
        targets_out.append({**target.to_dict(), "windows": windows})

    return {
        "observed": len(parsed),
        "failures": sum(0 if p[2] else 1 for p in parsed),
        "windows_s": list(windows_s),
        "alpha": alpha,
        "anchor_epoch_s": anchor,
        "stages": stages_out,
        "targets": targets_out,
    }
