"""Exporters: Chrome trace-event JSON (Perfetto) and JSONL decision logs.

The Chrome trace-event format (``ph``/``ts``/``dur`` complete events plus
``M`` metadata rows) is what `ui.perfetto.dev <https://ui.perfetto.dev>`_
and ``chrome://tracing`` load natively. We emit two kinds of timelines
into one file:

* **wall-clock spans** from a :class:`~repro.obs.tracing.Tracer` — one
  Perfetto "process" (default pid 1), one track per Python thread.
  Spans merged in from worker processes (tagged with a ``worker_pid``
  attribute by :meth:`~repro.obs.tracing.Tracer.merge_payload`) are
  routed to their own Perfetto processes at ``WORKER_PID_BASE + k``, so
  the fan-out reads as parent process + one lane per worker, all
  parented under the request's trace id; and
* the **simulated schedule** from a
  :class:`~repro.simulation.trace.SimulationResult` — one process per VM,
  with boot/download/compute slices on the main track and the overlapping
  uploads on a second track. Simulated seconds map 1:1 onto trace seconds.

Timestamps are microseconds (the format's unit); ``displayTimeUnit`` is
milliseconds. See docs/OBSERVABILITY.md for a walkthrough.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Union

from ..simulation.trace import SimulationResult
from .tracing import DecisionRecord, Tracer

__all__ = [
    "tracer_events",
    "simulation_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "decision_log_lines",
    "write_decision_log",
]

#: pid of the wall-clock process in the exported trace.
WALL_PID = 1
#: pid of the ``k``-th distinct worker process seen in merged spans is
#: ``WORKER_PID_BASE + k`` (kept below :data:`SIM_PID_BASE` so VM tracks
#: remain the only pids >= 100).
WORKER_PID_BASE = 10
#: pid of simulated VM ``v`` is ``SIM_PID_BASE + v``.
SIM_PID_BASE = 100

_US = 1_000_000.0  # seconds → trace microseconds


def _meta(pid: int, name: str, *, tid: Optional[int] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _slice(
    name: str,
    cat: str,
    start_s: float,
    end_s: float,
    pid: int,
    tid: int,
    args: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": round(start_s * _US, 3),
        "dur": round(max(end_s - start_s, 0.0) * _US, 3),
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


# ----------------------------------------------------------------------
def tracer_events(tracer: Tracer, *, pid: int = WALL_PID) -> List[Dict[str, Any]]:
    """Wall-clock spans as complete events, one track per thread.

    Spans carrying a ``worker_pid`` attribute (merged in from worker
    processes by :meth:`Tracer.merge_payload`) land in a dedicated
    Perfetto process per distinct worker, ``WORKER_PID_BASE + k`` in
    order of first appearance, named after the OS pid.
    """
    events: List[Dict[str, Any]] = [_meta(pid, "wall-clock (python)")]
    # (trace pid, thread name) -> tid; worker os-pid -> trace pid.
    tids: Dict[Any, int] = {}
    worker_pids: Dict[int, int] = {}
    origin = tracer.origin_s
    for span in tracer.spans:
        worker = span.attributes.get("worker_pid")
        if worker is None:
            span_pid = pid
        else:
            span_pid = worker_pids.get(int(worker))
            if span_pid is None:
                span_pid = WORKER_PID_BASE + len(worker_pids)
                worker_pids[int(worker)] = span_pid
                events.append(
                    _meta(span_pid, f"worker (os pid {int(worker)})"))
        track_key = (span_pid, span.thread)
        tid = tids.get(track_key)
        if tid is None:
            tid = sum(1 for key in tids if key[0] == span_pid)
            tids[track_key] = tid
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attributes)
        events.append(
            _slice(
                span.name, "wall", span.start_s - origin, span.end_s - origin,
                span_pid, tid, args,
            )
        )
    for (track_pid, thread), tid in tids.items():
        events.append(_meta(track_pid, thread, tid=tid))
    return events


def simulation_events(
    result: SimulationResult, *, pid_base: int = SIM_PID_BASE
) -> List[Dict[str, Any]]:
    """The simulated timeline: one Perfetto process per VM.

    Track 0 carries boot/download/compute slices (mutually exclusive on a
    single-core VM); track 1 carries the uploads, which the platform model
    lets overlap subsequent work (§III-B).
    """
    events: List[Dict[str, Any]] = []
    t0 = result.start
    for vm in sorted(result.vms, key=lambda v: v.vm_id):
        pid = pid_base + vm.vm_id
        events.append(_meta(pid, f"vm{vm.vm_id} ({vm.category.name})"))
        events.append(_meta(pid, "tasks", tid=0))
        events.append(_meta(pid, "uploads", tid=1))
        events.append(
            _slice(
                "boot", "boot", vm.booked_at - t0, vm.ready_at - t0, pid, 0,
                {"category": vm.category.name},
            )
        )
    for rec in sorted(result.tasks.values(), key=lambda r: r.download_start):
        pid = pid_base + rec.vm_id
        if rec.compute_start > rec.download_start:
            events.append(
                _slice(
                    f"{rec.tid} (download)", "download",
                    rec.download_start - t0, rec.compute_start - t0, pid, 0,
                )
            )
        events.append(
            _slice(
                rec.tid, "compute", rec.compute_start - t0,
                rec.compute_end - t0, pid, 0,
                {"actual_weight": rec.actual_weight},
            )
        )
        if rec.outputs_at_dc > rec.compute_end:
            events.append(
                _slice(
                    f"{rec.tid} (upload)", "upload",
                    rec.compute_end - t0, rec.outputs_at_dc - t0, pid, 1,
                )
            )
    return events


def to_chrome_trace(
    tracer: Optional[Tracer] = None,
    result: Optional[SimulationResult] = None,
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a loadable trace document from either or both sources."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        events.extend(tracer_events(tracer))
    if result is not None:
        events.extend(simulation_events(result))
    doc: Dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }
    other: Dict[str, Any] = {"generator": "repro.obs"}
    if tracer is not None and getattr(tracer, "trace_id", ""):
        other["trace_id"] = tracer.trace_id
    if metadata:
        other.update(metadata)
    doc["otherData"] = other
    return doc


def write_chrome_trace(
    target: Union[str, IO[str]],
    tracer: Optional[Tracer] = None,
    result: Optional[SimulationResult] = None,
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write :func:`to_chrome_trace` output as JSON; returns the document."""
    doc = to_chrome_trace(tracer, result, metadata=metadata)
    if isinstance(target, str):
        with open(target, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, target)
    return doc


# ----------------------------------------------------------------------
def decision_log_lines(decisions: Iterable[DecisionRecord]) -> Iterator[str]:
    """One compact JSON object per decision record."""
    for record in decisions:
        yield json.dumps(record.to_dict(), separators=(",", ":"))


def write_decision_log(
    target: Union[str, IO[str]], decisions: Iterable[DecisionRecord]
) -> int:
    """Write a JSONL decision log; returns the number of records written."""
    n = 0
    if isinstance(target, str):
        with open(target, "w") as fh:
            for line in decision_log_lines(decisions):
                fh.write(line + "\n")
                n += 1
    else:
        for line in decision_log_lines(decisions):
            target.write(line + "\n")
            n += 1
    return n
