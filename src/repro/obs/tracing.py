"""Span-based tracing and scheduler decision records.

The tracer answers two questions the paper's metrics cannot: *where does
wall-clock time go* (nested spans around scheduling, simulation, sweeps,
service requests) and *why did the scheduler do that* (one
:class:`DecisionRecord` per placed task, capturing the candidate hosts the
planner weighed and the budget arithmetic that picked the winner).

Instrumentation is free when disabled: the process-global tracer defaults
to a :class:`NullTracer` whose ``span`` returns a shared no-op context
manager and whose recording methods are empty. Hot call sites additionally
guard expensive record construction behind ``tracer.enabled``. Enable
collection for a region with::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        make_scheduler("heft_budg").schedule(wf, platform, budget)
    print(len(tracer.spans), len(tracer.decisions))

Spans carry both a monotonic clock (``start_s``/``end_s`` from
``perf_counter``, used for durations) and a wall-clock epoch anchor
(``start_epoch_s``) so exporters can place them on a real timeline.

**Cross-process propagation.** Each tracer owns a ``trace_id``; the
worker pool (:mod:`repro.parallel.pool`) ships it to worker processes,
installs a worker-local tracer under the same id, and returns
:meth:`Tracer.export_payload` alongside each shard result. The parent
folds those in with :meth:`Tracer.merge_payload`, which re-anchors the
worker's monotonic timestamps onto the parent timeline via the shared
wall-clock epoch (``new_start = parent.origin_s + (span.start_epoch_s -
parent.origin_epoch_s)``, durations preserved) and re-parents worker
root spans under the caller's currently-open span — so one exported
Chrome trace shows gateway → admission → queue → worker shards → merge.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Span",
    "DecisionRecord",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One timed region; nesting is recorded via ``parent_id``."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    start_epoch_s: float
    end_s: float = 0.0
    thread: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(self.end_s - self.start_s, 0.0)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by exporters and logs)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "start_epoch_s": self.start_epoch_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }


@dataclass
class DecisionRecord:
    """Why one task landed where it did (see docs/OBSERVABILITY.md).

    ``kind`` is ``"host_selection"`` (Algorithm 2's getBestHost) or
    ``"refine_move"`` (an accepted Algorithm 5 re-mapping). ``allowance``
    is the dollars the task was allowed to spend (its share ``B_T`` plus
    the pot); ``remaining`` is what it handed back. ``candidates`` holds
    one compact dict per evaluated host, already sorted by the scheduler's
    preference.
    """

    kind: str
    task: str
    chosen_vm: Optional[int] = None
    category: str = ""
    eft: float = 0.0
    cost: float = 0.0
    allowance: float = 0.0
    remaining: float = 0.0
    within_budget: bool = True
    round: int = 0
    n_candidates: int = 0
    candidates: List[Dict[str, Any]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form, one line of the decision log."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "task": self.task,
            "chosen_vm": self.chosen_vm,
            "category": self.category,
            "eft": self.eft,
            "cost": self.cost,
            "allowance": self.allowance,
            "remaining": self.remaining,
            "within_budget": self.within_budget,
            "round": self.round,
            "n_candidates": self.n_candidates,
            "candidates": list(self.candidates),
        }
        out.update(self.extra)
        return out


class _ActiveSpan:
    """Context manager opened by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._finish(self.span)


class _NullSpanContext:
    """Shared no-op context manager; also quacks like a :class:`Span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attributes: Any) -> "_NullSpanContext":
        return self


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects spans, decision records, and named counters (thread-safe).

    ``max_spans``/``max_decisions`` bound memory on very long runs; once a
    buffer is full further records are counted in ``dropped`` instead of
    stored.
    """

    enabled = True

    def __init__(
        self, *, max_spans: int = 100_000, max_decisions: int = 1_000_000,
        trace_id: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stack = threading.local()
        #: Request-scoped identity shared across process boundaries:
        #: worker-local tracers are created with the parent's id so a
        #: merged trace is one logical request.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.max_spans = max_spans
        self.max_decisions = max_decisions
        self.spans: List[Span] = []
        self.decisions: List[DecisionRecord] = []
        self.counters: Dict[str, float] = {}
        self.dropped: Dict[str, int] = {"spans": 0, "decisions": 0}
        #: Wall-clock anchor: epoch seconds at perf_counter ``origin_s``.
        self.origin_epoch_s = time.time()
        self.origin_s = time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a nested span: ``with tracer.span("simulate") as sp: ...``"""
        stack = self._parents()
        parent_id = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            start_s=time.perf_counter(),
            start_epoch_s=time.time(),
            thread=threading.current_thread().name,
            attributes=dict(attributes) if attributes else {},
        )
        stack.append(sp.span_id)
        return _ActiveSpan(self, sp)

    def _parents(self) -> List[int]:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        return stack

    def current_span_id(self) -> Optional[int]:
        """Id of the calling thread's innermost open span, if any."""
        stack = self._parents()
        return stack[-1] if stack else None

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._parents()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped["spans"] += 1

    # ------------------------------------------------------------------
    def decide(self, record: DecisionRecord) -> None:
        """Append one decision record."""
        with self._lock:
            if len(self.decisions) < self.max_decisions:
                self.decisions.append(record)
            else:
                self.dropped["decisions"] += 1

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    # ------------------------------------------------------------------
    def export_payload(self) -> Dict[str, Any]:
        """Picklable snapshot shipped across the process boundary.

        Returned by worker processes next to their shard results (see
        ``repro.parallel.pool._invoke``) and folded into the parent
        with :meth:`merge_payload`. Decision records deliberately stay
        worker-local — they can number in the millions and the decision
        log is a per-schedule artifact, not a per-request one.
        """
        with self._lock:
            spans = [sp.to_dict() for sp in self.spans]
            counters = dict(self.counters)
            dropped = dict(self.dropped)
        return {
            "trace_id": self.trace_id,
            "origin_epoch_s": self.origin_epoch_s,
            "origin_s": self.origin_s,
            "spans": spans,
            "counters": counters,
            "dropped": dropped,
        }

    def merge_payload(
        self,
        payload: Mapping[str, Any],
        *,
        parent_id: Optional[int] = None,
        worker_pid: Optional[int] = None,
    ) -> int:
        """Fold a worker tracer's :meth:`export_payload` into this one.

        Worker spans get fresh ids from this tracer's counter (parent
        links remapped), are re-anchored onto this tracer's monotonic
        timeline through the shared wall-clock epoch, and worker root
        spans are re-parented under ``parent_id`` (typically the span
        the caller had open when the shard was submitted). ``worker_pid``
        and the payload's ``trace_id`` are stamped as attributes so
        exporters can route the spans to per-worker process tracks.
        Counters merge additively. Returns the number of spans merged.
        """
        spans = list(payload.get("spans") or ())
        trace_id = payload.get("trace_id")
        merged = 0
        with self._lock:
            id_map = {
                int(data["span_id"]): next(self._ids) for data in spans
            }
            for data in spans:
                if len(self.spans) >= self.max_spans:
                    self.dropped["spans"] += len(spans) - merged
                    break
                old_parent = data.get("parent_id")
                if old_parent is not None and int(old_parent) in id_map:
                    new_parent: Optional[int] = id_map[int(old_parent)]
                else:
                    new_parent = parent_id
                start_epoch = float(
                    data.get("start_epoch_s") or self.origin_epoch_s)
                start_s = self.origin_s + (
                    start_epoch - self.origin_epoch_s)
                duration = float(data.get("duration_s") or 0.0)
                attributes = dict(data.get("attributes") or {})
                if worker_pid is not None:
                    attributes.setdefault("worker_pid", worker_pid)
                if trace_id:
                    attributes.setdefault("trace_id", trace_id)
                self.spans.append(Span(
                    name=str(data.get("name", "")),
                    span_id=id_map[int(data["span_id"])],
                    parent_id=new_parent,
                    start_s=start_s,
                    start_epoch_s=start_epoch,
                    end_s=start_s + duration,
                    thread=str(data.get("thread", "")),
                    attributes=attributes,
                ))
                merged += 1
            for name, amount in dict(
                    payload.get("counters") or {}).items():
                self.counters[name] = (
                    self.counters.get(name, 0.0) + float(amount))
            for key, n in dict(payload.get("dropped") or {}).items():
                if n:
                    self.dropped[key] = self.dropped.get(key, 0) + int(n)
        return merged

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all collected spans, decisions, and counters."""
        with self._lock:
            self.spans.clear()
            self.decisions.clear()
            self.counters.clear()
            self.dropped = {"spans": 0, "decisions": 0}

    def summary(self) -> Dict[str, Any]:
        """Aggregate view: per-span-name count/total seconds, counters."""
        with self._lock:
            per_name: Dict[str, Tuple[int, float]] = {}
            for sp in self.spans:
                n, total = per_name.get(sp.name, (0, 0.0))
                per_name[sp.name] = (n + 1, total + sp.duration_s)
            return {
                "spans": {
                    name: {"count": n, "total_s": total}
                    for name, (n, total) in sorted(per_name.items())
                },
                "n_decisions": len(self.decisions),
                "counters": dict(self.counters),
                "dropped": dict(self.dropped),
            }


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op.

    The process-global default, so instrumented code paths pay one
    attribute load and (at most) one empty context manager per call.
    """

    enabled = False
    trace_id = ""
    spans: Tuple[Span, ...] = ()
    decisions: Tuple[DecisionRecord, ...] = ()
    counters: Dict[str, float] = {}

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        """Return the shared no-op span context."""
        return _NULL_SPAN

    def current_span_id(self) -> Optional[int]:
        """No open spans, ever."""
        return None

    def decide(self, record: DecisionRecord) -> None:
        """Discard the record."""

    def count(self, name: str, amount: float = 1.0) -> None:
        """Discard the increment."""

    def export_payload(self) -> Dict[str, Any]:
        """An empty payload, shaped like :meth:`Tracer.export_payload`."""
        return {"trace_id": "", "origin_epoch_s": 0.0, "origin_s": 0.0,
                "spans": [], "counters": {}, "dropped": {}}

    def merge_payload(self, payload: Mapping[str, Any], *,
                      parent_id: Optional[int] = None,
                      worker_pid: Optional[int] = None) -> int:
        """Discard the payload."""
        return 0

    def clear(self) -> None:
        """Nothing to clear."""

    def summary(self) -> Dict[str, Any]:
        """An empty aggregate, shaped like :meth:`Tracer.summary`."""
        return {"spans": {}, "n_decisions": 0, "counters": {}, "dropped": {}}


_NULL_TRACER = NullTracer()
_current: Any = _NULL_TRACER
_swap_lock = threading.Lock()


def get_tracer() -> Any:
    """The process-global tracer (a :class:`NullTracer` unless installed)."""
    return _current


def set_tracer(tracer: Optional[Any]) -> None:
    """Install ``tracer`` globally; ``None`` restores the null tracer."""
    global _current
    with _swap_lock:
        _current = tracer if tracer is not None else _NULL_TRACER


class _UseTracer:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Any) -> None:
        self._tracer = tracer
        self._previous: Any = None

    def __enter__(self) -> Any:
        self._previous = get_tracer()
        set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info: Any) -> None:
        set_tracer(self._previous)


def use_tracer(tracer: Any) -> _UseTracer:
    """Scope-install a tracer: ``with use_tracer(Tracer()) as t: ...``."""
    return _UseTracer(tracer)
