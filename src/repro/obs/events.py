"""Thread-safe in-process pub/sub bus for run and job lifecycle events.

The scheduling service and the run ledger publish small, JSON-ready
events as work moves through the system::

    job.queued     {job_id, fingerprint, algorithm}
    job.started    {job_id}
    job.progress   {job_id, stage, done, total}
    job.finished   {job_id, state, error?}
    run.recorded   {run_id, algorithm, workflow, ...}

Subscribers attach a bounded queue; publishing never blocks (a slow
subscriber drops events and the drop is counted, it does not back up the
publisher). A bounded history ring lets late subscribers replay what they
missed — the SSE endpoints rely on this to show a finished job's full
lifecycle. Every event carries a bus-wide monotonically increasing ``seq``
so replay + live streams can be merged without duplicates.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Event",
    "EventBus",
    "Subscription",
    "JOB_EVENT_TYPES",
    "RUN_RECORDED",
    "FAULT_INJECTED",
    "FAULT_PREEMPTED",
    "RECOVERY_APPLIED",
    "RECOVERY_REJECTED",
    "RECOVERY_CHECKPOINT_RESTART",
    "WORKER_CRASHED",
    "NODE_JOINED",
    "NODE_LOST",
    "SHARD_REASSIGNED",
    "ADMISSION_ADMITTED",
    "ADMISSION_REJECTED",
]

#: The job lifecycle event types, in their natural order. ``job.retried``
#: and ``job.failed`` only appear on unhappy paths; ``job.finished`` is
#: always the terminal event (after ``job.failed`` when the job failed),
#: which is what lets SSE job streams end on a single event type.
JOB_EVENT_TYPES = (
    "job.queued",
    "job.started",
    "job.progress",
    "job.retried",
    "job.failed",
    "job.finished",
)

#: Published by the ledger after a run row is committed.
RUN_RECORDED = "run.recorded"

#: Published by the fault runner for every injected fault that fired.
FAULT_INJECTED = "fault.injected"

#: Published by the fault runner for every spot VM a correlated market
#: revocation burst killed (carries the category and warning lead time).
FAULT_PREEMPTED = "fault.preempted"

#: Published by the fault runner when a recovery is accepted / refused.
RECOVERY_APPLIED = "recovery.applied"
RECOVERY_REJECTED = "recovery.rejected"

#: Published by the fault runner when an accepted recovery resumes tasks
#: from banked spot checkpoints instead of re-executing them from scratch.
RECOVERY_CHECKPOINT_RESTART = "recovery.checkpoint_restart"

#: Published by :class:`repro.parallel.WorkerPool` when a worker process
#: dies mid-shard (the pool respawns and retries the affected shards).
WORKER_CRASHED = "worker.crashed"

#: Published by :class:`repro.cluster.ClusterPool` when a remote worker
#: node completes its handshake (carries address, pid, slots).
NODE_JOINED = "node.joined"

#: Published when a node's connection drops or its heartbeats go stale;
#: its in-flight shards are requeued onto the surviving nodes.
NODE_LOST = "node.lost"

#: Published per shard moved off a dead or slow node (carries the shard
#: index, the node it left, and the retry attempt number).
SHARD_REASSIGNED = "shard.reassigned"

#: Published by the admission controller for every decision: an admitted
#: request carries its tenant, priority and pre-admission estimate; a
#: refusal carries the typed reason (rate_limited / budget_exhausted /
#: queue_full) and the backoff hint.
ADMISSION_ADMITTED = "admission.admitted"
ADMISSION_REJECTED = "admission.rejected"


@dataclass(frozen=True)
class Event:
    """One published event (immutable; ``data`` is JSON-ready)."""

    seq: int
    type: str
    ts: float
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by the SSE endpoints and tests)."""
        return {"seq": self.seq, "type": self.type, "ts": self.ts,
                "data": dict(self.data)}

    def to_sse(self) -> str:
        """Render as one Server-Sent-Events frame (trailing blank line)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return f"id: {self.seq}\nevent: {self.type}\ndata: {payload}\n\n"


class Subscription:
    """One subscriber's bounded event queue (see :meth:`EventBus.subscribe`).

    Iterate with :meth:`get` / :meth:`events`; always detach via
    :meth:`close` (or use the subscription as a context manager) so the bus
    stops fanning out to it.
    """

    def __init__(
        self,
        bus: "EventBus",
        *,
        types: Optional[Sequence[str]] = None,
        maxsize: int = 1024,
    ) -> None:
        self._bus = bus
        self._types = None if types is None else frozenset(types)
        self._queue: "queue.Queue[Event]" = queue.Queue(maxsize=maxsize)
        self.dropped = 0
        self.closed = False

    # Called by the bus (outside its lock; see EventBus.publish).
    def _offer(self, event: Event) -> None:
        if self._types is not None and event.type not in self._types:
            return
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1
            self._bus._note_drop(event.type)

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Next event, or ``None`` when ``timeout`` elapses first."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def events(self, *, timeout: Optional[float] = None) -> Iterator[Event]:
        """Yield events until ``timeout`` seconds pass with none arriving."""
        while True:
            event = self.get(timeout=timeout)
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Detach from the bus; idempotent."""
        self.closed = True
        self._bus._detach(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class EventBus:
    """Publish/subscribe with bounded history replay (thread-safe).

    ``history`` bounds the replay ring; older events fall off silently
    (their loss is visible as a gap in ``seq``). Events dropped because a
    *subscriber's* bounded queue overflowed are counted — per
    subscriber (``Subscription.dropped``), bus-wide
    (:attr:`dropped_total`, by event type in :meth:`dropped_by_type`),
    and into an optional :class:`~repro.service.metrics.MetricsRegistry`
    as the ``events_dropped`` counter (rendered as
    ``repro_events_dropped_total`` on ``/metrics``).
    """

    def __init__(self, *, history: int = 2048,
                 metrics: Optional[Any] = None) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._history: Deque[Event] = deque(maxlen=history)
        self._subscribers: List[Subscription] = []
        self._dropped_by_type: Dict[str, int] = {}
        self.dropped_total = 0
        #: Optional metrics registry; assignable after construction (the
        #: engine wires its own registry into a caller-supplied bus).
        self.metrics = metrics

    def _note_drop(self, event_type: str) -> None:
        # Called from _offer, outside the bus lock (publish fans out
        # unlocked so a slow subscriber cannot block the bus).
        with self._lock:
            self.dropped_total += 1
            self._dropped_by_type[event_type] = (
                self._dropped_by_type.get(event_type, 0) + 1)
        metrics = self.metrics
        if metrics is not None:
            metrics.incr("events_dropped")

    def dropped_by_type(self) -> Dict[str, int]:
        """Bus-wide dropped-event counts keyed by event type."""
        with self._lock:
            return dict(self._dropped_by_type)

    def publish(self, type: str, **data: Any) -> Event:
        """Publish one event; returns it (with its assigned ``seq``)."""
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, type=type, ts=time.time(), data=data)
            self._history.append(event)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub._offer(event)
        return event

    def subscribe(
        self,
        *,
        types: Optional[Sequence[str]] = None,
        maxsize: int = 1024,
    ) -> Subscription:
        """Attach a new subscriber (optionally filtered to ``types``)."""
        sub = Subscription(self, types=types, maxsize=maxsize)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def _detach(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def history(
        self,
        *,
        types: Optional[Sequence[str]] = None,
        match: Optional[Callable[[Event], bool]] = None,
        after_seq: int = 0,
        limit: Optional[int] = None,
    ) -> List[Event]:
        """Replay buffered events (oldest first), filtered.

        ``after_seq`` skips events with ``seq <= after_seq``; ``types``
        keeps only the named event types; ``match`` is an arbitrary
        predicate; ``limit`` keeps the **newest** matching events.
        """
        wanted = None if types is None else frozenset(types)
        with self._lock:
            out = [
                ev for ev in self._history
                if ev.seq > after_seq
                and (wanted is None or ev.type in wanted)
                and (match is None or match(ev))
            ]
        if limit is not None and len(out) > limit:
            # slice from the front: out[-limit:] would return everything
            # for limit == 0
            out = out[len(out) - limit:]
        return out

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently published event."""
        with self._lock:
            return self._seq

    @property
    def n_subscribers(self) -> int:
        """Currently attached subscribers."""
        with self._lock:
            return len(self._subscribers)
