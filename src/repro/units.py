"""Unit helpers and constants.

The model follows the paper's conventions:

* task *weights* are numbers of instructions (flop);
* VM *speeds* are instructions per second (flop/s);
* data sizes are bytes;
* bandwidth is bytes per second;
* money is US dollars; hourly prices are converted to $/s internally;
* time is seconds.

These helpers exist so that magnitudes written in source code read like the
paper ("20 Gflop", "1.2 GB", "$0.085/h") instead of raw exponents.
"""

from __future__ import annotations

import math

__all__ = [
    "KB", "MB", "GB", "TB",
    "KFLOP", "MFLOP", "GFLOP", "TFLOP",
    "MINUTE", "HOUR", "DAY", "MONTH",
    "per_hour", "per_gb_month", "ceil_seconds", "pretty_bytes",
    "pretty_seconds", "pretty_money",
]

# Data sizes (decimal, as used by cloud providers' price sheets).
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

# Work amounts.
KFLOP = 1e3
MFLOP = 1e6
GFLOP = 1e9
TFLOP = 1e12

# Time.
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
MONTH = 30 * DAY  # billing month used by storage pricing


def per_hour(dollars: float) -> float:
    """Convert an hourly price (``$/h``) into the internal ``$/s`` rate."""
    return dollars / HOUR


def per_gb_month(dollars: float, stored_bytes: float) -> float:
    """Convert a storage price (``$/GB/month``) into a ``$/s`` rate.

    ``stored_bytes`` is the footprint held for the duration being billed;
    the paper charges the datacenter ``c_h,DC`` per time unit over the whole
    makespan (Eq. 2), so the footprint is fixed per workflow.
    """
    return dollars * (stored_bytes / GB) / MONTH


def ceil_seconds(duration: float) -> float:
    """Round a duration up to a whole second (per-second billing, §V-A).

    Guards against float fuzz: durations within 1e-9 of an integer are not
    bumped a full extra second.
    """
    if duration <= 0.0:
        return 0.0
    nearest = round(duration)
    if abs(duration - nearest) < 1e-9:
        return float(nearest)
    return float(math.ceil(duration))


def pretty_bytes(n: float) -> str:
    """Human-readable data size (``1.20 GB``)."""
    for unit, div in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def pretty_seconds(t: float) -> str:
    """Human-readable duration (``2h03m``, ``45.2s``)."""
    if t >= HOUR:
        hours = int(t // HOUR)
        minutes = int((t - hours * HOUR) // MINUTE)
        return f"{hours}h{minutes:02d}m"
    if t >= MINUTE:
        minutes = int(t // MINUTE)
        seconds = t - minutes * MINUTE
        return f"{minutes}m{seconds:04.1f}s"
    return f"{t:.1f}s"


def pretty_money(dollars: float) -> str:
    """Human-readable dollar amount (``$12.34``)."""
    return f"${dollars:,.2f}"
