"""repro — budget-aware scheduling of scientific workflows on IaaS clouds.

Reproduction of Caniou, Caron, Kong Win Chang & Robert, *Budget-aware
scheduling algorithms for scientific workflows with stochastic task weights
on heterogeneous IaaS Cloud platforms*, IPDPSW 2018.

Quickstart::

    from repro import generate, PAPER_PLATFORM, make_scheduler
    from repro import execute_schedule, sample_weights

    wf = generate("montage", 90, rng=1, sigma_ratio=0.5)
    result = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget=20.0)
    run = execute_schedule(wf, PAPER_PLATFORM, result.schedule,
                           sample_weights(wf, rng=2))
    print(run.makespan, run.total_cost, run.n_vms)
"""

from .advisor import PlanRecommendation, recommend
from .errors import (
    CycleError,
    DaxParseError,
    InfeasibleBudgetError,
    JobNotFoundError,
    PlatformError,
    ReproError,
    ScheduleValidationError,
    SchedulingError,
    ServiceError,
    SimulationError,
    WorkflowError,
)
from .platform import (
    PAPER_PLATFORM,
    CloudPlatform,
    CostBreakdown,
    VMCategory,
    make_linear_platform,
)
from .scheduling import (
    SCHEDULERS,
    BdtScheduler,
    CgPlusScheduler,
    CgScheduler,
    HeftBudgPlusInvScheduler,
    HeftBudgPlusScheduler,
    HeftBudgScheduler,
    HeftScheduler,
    MinMinBudgScheduler,
    MinMinScheduler,
    Schedule,
    Scheduler,
    SchedulerResult,
    available_schedulers,
    divide_budget,
    make_scheduler,
    refine_schedule,
)
from .scheduling import (
    IdleSplitResult,
    OnlineHeftBudg,
    OnlineRunResult,
    split_idle_gaps,
)
from .simulation import (
    render_gantt,
    render_task_table,
    SimulationResult,
    conservative_weights,
    evaluate_schedule,
    execute_schedule,
    mean_weights,
    sample_weights,
)
from .workflow import (
    StochasticWeight,
    Task,
    Workflow,
    bottom_levels,
    critical_path,
    heft_order,
    parse_dax,
    read_dax,
    write_dax,
)
from .service import (
    ScheduleRequest,
    ScheduleResponse,
    SchedulingService,
)
from .workflow.generators import FAMILIES, PAPER_FAMILIES, generate

__version__ = "1.0.0"

__all__ = [
    "BdtScheduler",
    "CgPlusScheduler",
    "CgScheduler",
    "CloudPlatform",
    "CostBreakdown",
    "CycleError",
    "DaxParseError",
    "FAMILIES",
    "HeftBudgPlusInvScheduler",
    "HeftBudgPlusScheduler",
    "HeftBudgScheduler",
    "HeftScheduler",
    "InfeasibleBudgetError",
    "JobNotFoundError",
    "MinMinBudgScheduler",
    "MinMinScheduler",
    "PAPER_FAMILIES",
    "PAPER_PLATFORM",
    "IdleSplitResult",
    "OnlineHeftBudg",
    "OnlineRunResult",
    "PlanRecommendation",
    "PlatformError",
    "ReproError",
    "SCHEDULERS",
    "Schedule",
    "ScheduleRequest",
    "ScheduleResponse",
    "ScheduleValidationError",
    "Scheduler",
    "SchedulerResult",
    "SchedulingError",
    "SchedulingService",
    "ServiceError",
    "SimulationError",
    "SimulationResult",
    "StochasticWeight",
    "Task",
    "VMCategory",
    "Workflow",
    "WorkflowError",
    "available_schedulers",
    "bottom_levels",
    "conservative_weights",
    "critical_path",
    "divide_budget",
    "evaluate_schedule",
    "execute_schedule",
    "generate",
    "heft_order",
    "make_linear_platform",
    "make_scheduler",
    "mean_weights",
    "parse_dax",
    "read_dax",
    "recommend",
    "refine_schedule",
    "render_gantt",
    "render_task_table",
    "sample_weights",
    "split_idle_gaps",
    "write_dax",
]
