"""Post-execution usage analysis: VM utilization and dollar efficiency.

Answers the operational questions a schedule's Gantt chart raises: how much
of each rented window did real work, where did the money go, how much was
idle "continuous slot" tax — the quantities behind the paper's trade-off
between re-using VMs and enrolling fresh ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .trace import SimulationResult

__all__ = ["VMUsage", "UsageReport", "analyze_usage"]


@dataclass(frozen=True)
class VMUsage:
    """Activity breakdown of one VM's billed window (seconds)."""

    vm_id: int
    category: str
    window: float
    compute: float
    download: float
    idle: float
    n_tasks: int

    @property
    def utilization(self) -> float:
        """Compute fraction of the billed window (0..1)."""
        return self.compute / self.window if self.window > 0 else 0.0


@dataclass(frozen=True)
class UsageReport:
    """Fleet-level usage summary of one execution."""

    vms: List[VMUsage]
    total_window: float
    total_compute: float

    @property
    def mean_utilization(self) -> float:
        """Aggregate compute seconds over aggregate billed seconds."""
        return (
            self.total_compute / self.total_window
            if self.total_window > 0 else 0.0
        )

    def least_utilized(self, n: int = 3) -> List[VMUsage]:
        """The ``n`` worst VMs — prime candidates for consolidation or
        idle-gap splitting."""
        return sorted(self.vms, key=lambda u: u.utilization)[:n]


def analyze_usage(result: SimulationResult) -> UsageReport:
    """Break each VM's billed window into compute / download / idle time.

    Uploads overlap other activity (the model's transfers are independent
    of computation), so idle is measured against download+compute only;
    a window consisting purely of trailing uploads therefore counts as
    idle — it is still billed.
    """
    by_vm: Dict[int, List] = {}
    for rec in result.tasks.values():
        by_vm.setdefault(rec.vm_id, []).append(rec)

    usages: List[VMUsage] = []
    total_window = 0.0
    total_compute = 0.0
    for vm in result.vms:
        recs = by_vm.get(vm.vm_id, [])
        window = max(vm.end_at - vm.ready_at, 0.0)
        compute = sum(r.compute_end - r.compute_start for r in recs)
        download = sum(r.compute_start - r.download_start for r in recs)
        idle = max(window - compute - download, 0.0)
        usages.append(
            VMUsage(
                vm_id=vm.vm_id,
                category=vm.category.name,
                window=window,
                compute=compute,
                download=download,
                idle=idle,
                n_tasks=len(recs),
            )
        )
        total_window += window
        total_compute += compute
    return UsageReport(
        vms=usages, total_window=total_window, total_compute=total_compute
    )
