"""Execution traces and the simulation result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..platform.pricing import CostBreakdown
from ..platform.vm import VMCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..faults.plan import FaultEvent

__all__ = ["TaskRecord", "VMRecord", "SimulationResult"]


@dataclass
class TaskRecord:
    """Timeline of one task's execution.

    ``download_start ≤ compute_start ≤ compute_end ≤ outputs_at_dc``; when
    the task needs no download the first two coincide, and when none of its
    outputs go through the datacenter ``outputs_at_dc == compute_end``.

    ``failed`` marks a task killed by an injected VM crash mid-download or
    mid-compute; its later timeline fields keep their pre-crash defaults.
    ``checkpoint_weight`` is only set on failed tasks that ran with
    checkpointing on a spot VM: the *absolute* instruction count made
    durable at the datacenter before the kill (prior banked progress plus
    this attempt's checkpoints), which recovery credits on the restart.
    """

    tid: str
    vm_id: int
    download_start: float = 0.0
    compute_start: float = 0.0
    compute_end: float = 0.0
    outputs_at_dc: float = 0.0
    actual_weight: float = 0.0
    failed: bool = False
    checkpoint_weight: float = 0.0


@dataclass
class VMRecord:
    """Lifecycle of one enrolled VM.

    ``booked_at`` is when the VM was requested (``H_start,first`` uses the
    earliest booking); ``ready_at`` is after the uncharged boot; billing
    runs from ``ready_at`` to ``end_at`` (Eq. 1).

    ``crashed_at`` is set by fault injection when the VM died mid-run; the
    billed window then ends at the crash instant (the lost VM-hours are
    paid for — Eq. 1 knows nothing about usefulness). ``preempted``
    distinguishes a spot-market revocation from an ordinary crash: the VM
    is just as dead, but recovery falls back to the on-demand twin instead
    of re-enrolling the same (revoked) spot category.
    """

    vm_id: int
    category: VMCategory
    booked_at: float = 0.0
    ready_at: float = 0.0
    end_at: float = 0.0
    n_tasks: int = 0
    crashed_at: Optional[float] = None
    preempted: bool = False

    @property
    def billed_duration(self) -> float:
        """Raw (un-ceiled) rental duration in seconds."""
        return max(self.end_at - self.ready_at, 0.0)


@dataclass
class SimulationResult:
    """Outcome of executing a schedule (stochastic or deterministic).

    ``makespan`` is ``H_end,last − H_start,first`` (§III-C). ``cost`` is the
    itemized :class:`CostBreakdown`; ``total_cost`` is ``C_wf``.

    The fault fields stay at their empty defaults on a fault-free run:
    ``fault_events`` is the ordered log of injected faults that actually
    fired; ``failed_tasks`` are tasks killed by a VM crash; and
    ``blocked_tasks`` are tasks that never started because a (transitive)
    predecessor failed. ``completed`` is True iff every task ran to the end.
    """

    makespan: float
    start: float
    end: float
    cost: CostBreakdown
    tasks: Dict[str, TaskRecord] = field(default_factory=dict)
    vms: List[VMRecord] = field(default_factory=list)
    fault_events: List["FaultEvent"] = field(default_factory=list)
    failed_tasks: List[str] = field(default_factory=list)
    blocked_tasks: List[str] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True when every task executed (no crash losses, no blockage)."""
        return not self.failed_tasks and not self.blocked_tasks

    @property
    def total_cost(self) -> float:
        """``C_wf = Σ_v C_v + C_DC`` (Eq. 1+2)."""
        return self.cost.total

    @property
    def n_vms(self) -> int:
        """Number of VMs enrolled during the execution."""
        return len(self.vms)

    def respects_budget(self, budget: float, tol: float = 1e-9) -> bool:
        """Validity check used by the paper's Figure 3 middle row."""
        return self.total_cost <= budget * (1.0 + tol) + tol

    def finish_time_of(self, tid: str) -> float:
        """Compute-completion time of one task."""
        return self.tasks[tid].compute_end
