"""Schedule executor — the discrete-event heart of the simulator.

Replays a :class:`~repro.scheduling.schedule.Schedule` under given *actual*
task weights, with the paper's platform semantics (§III):

* each VM runs its queue serially, in the order induced by the schedule's
  global dispatch order;
* a task's inputs must be **at the datacenter** before its download starts:
  edge data produced on another VM arrive at ``producer compute end +
  size/bw`` (upload flow); data produced on the *same* VM never touch the
  datacenter; external inputs are staged at the DC at time 0;
* a fresh VM is *booked* the moment its first task's inputs are all at the
  DC; it boots for ``t_boot`` uncharged seconds, and billing starts when it
  becomes ready (``H_start,v``) — this serializes boot before the first
  download exactly like Eq. (7);
* downloads serialize before the compute they feed (Eq. 7); uploads start
  at compute end and overlap whatever the VM does next (the paper allows
  computation/communication overlap); uploads happen only for edges whose
  consumer lives on another VM and for external outputs;
* a VM is released once its last compute and all its uploads are done
  (``H_end,v``), and is billed per started second (§V-A).

The datacenter may be given a finite aggregate capacity
(``dc_capacity``) to study the saturation regime the paper blames for the
LIGO budget overruns; the default is the paper's infinite-capacity
assumption.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..faults.spot import CheckpointConfig

from ..errors import SimulationError
from ..faults.plan import FaultEvent, FaultPlan
from ..obs.tracing import get_tracer
from ..platform.cloud import CloudPlatform
from ..platform.pricing import CostBreakdown
from ..rng import RngLike, as_generator
from ..scheduling.schedule import Schedule
from ..workflow.dag import Workflow
from .bandwidth import FlowPool
from .events import EventQueue
from .trace import SimulationResult, TaskRecord, VMRecord

__all__ = [
    "execute_schedule",
    "evaluate_schedule",
    "conservative_weights",
    "mean_weights",
    "sample_weights",
    "run_replications",
]

# Task lifecycle phases.
_PENDING, _DOWNLOADING, _COMPUTING, _DONE, _FAILED = range(5)


def conservative_weights(wf: Workflow) -> Dict[str, float]:
    """Planning weights ``w̄ + σ`` for every task (§IV-A)."""
    return {tid: wf.task(tid).conservative_weight for tid in wf.tasks}


def mean_weights(wf: Workflow) -> Dict[str, float]:
    """Mean weights ``w̄`` for every task."""
    return {tid: wf.task(tid).mean_weight for tid in wf.tasks}


def sample_weights(wf: Workflow, rng: RngLike = None) -> Dict[str, float]:
    """One stochastic draw of actual weights (truncated Gaussian, §III-A)."""
    gen = as_generator(rng)
    return {tid: wf.task(tid).weight.sample(gen) for tid in wf.topological_order}


def run_replications(task: Mapping) -> List[tuple]:
    """Execute one shard of a Monte Carlo replication loop (pickle-safe).

    The module-level entrypoint that :mod:`repro.parallel` ships to worker
    processes: ``task`` is a plain mapping (everything in it must pickle)
    with keys

    ``wf`` / ``platform`` / ``schedule``
        the workflow, platform, and the *already computed* schedule;
    ``budget``
        the budget each replication's cost is checked against;
    ``seeds``
        per-replication :class:`numpy.random.SeedSequence` substreams from
        :func:`repro.rng.spawn_seeds` — building a generator from seed
        ``k`` reproduces the serial run's ``spawn()`` child exactly;
    ``weights``
        optional pre-drawn weight mappings (common random numbers); when
        present, ``seeds`` may be ``None`` and is ignored;
    ``dc_capacity``
        optional datacenter capacity (default infinite);
    ``validate_first``
        validate the schedule before the shard's first replication —
        ``True`` only for the shard containing global repetition 0, so the
        sharded loop validates exactly as often as the serial one.

    Returns one ``(makespan, total_cost, n_vms, within_budget)`` tuple per
    replication, in order — plain floats/ints/bools so results cross the
    process boundary cheaply.
    """
    wf = task["wf"]
    platform = task["platform"]
    schedule = task["schedule"]
    budget = task["budget"]
    weights_list = task.get("weights")
    seeds = task.get("seeds")
    dc_capacity = task.get("dc_capacity", math.inf)
    validate_first = task.get("validate_first", True)
    n = len(weights_list if weights_list is not None else seeds)
    out: List[tuple] = []
    # One span per shard (a no-op under the null tracer): in a traced
    # parallel run the worker-local tracer records it, and the pool
    # merges it back so the parent trace shows each shard's extent.
    with get_tracer().span(
        "simulate.replications", n_reps=n,
        workflow=getattr(wf, "name", ""),
    ):
        for k in range(n):
            weights = (
                weights_list[k] if weights_list is not None
                else sample_weights(wf, as_generator(seeds[k]))
            )
            run = execute_schedule(
                wf, platform, schedule, weights,
                dc_capacity=dc_capacity,
                validate=(k == 0 and validate_first),
            )
            out.append(
                (run.makespan, run.total_cost, run.n_vms,
                 run.respects_budget(budget))
            )
    return out


@dataclass
class _VMState:
    vm_id: int
    queue: List[str]
    cores: int = 1
    idx: int = 0          # next task to dispatch (FIFO, no leapfrogging)
    active: int = 0       # tasks currently downloading or computing
    boot_requested: bool = False
    ready: bool = False
    record: Optional[VMRecord] = None
    last_compute_end: float = 0.0
    last_upload_end: float = 0.0
    dead: bool = False    # killed by an injected crash; dispatches nothing


def execute_schedule(
    wf: Workflow,
    platform: CloudPlatform,
    schedule: Schedule,
    weights: Mapping[str, float],
    *,
    dc_capacity: float = math.inf,
    per_second_billing: bool = True,
    validate: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional["CheckpointConfig"] = None,
) -> SimulationResult:
    """Execute ``schedule`` on ``platform`` with the given actual weights.

    ``weights`` maps every task id to its actual instruction count — use
    :func:`sample_weights` for a stochastic run or
    :func:`conservative_weights` / :func:`mean_weights` for deterministic
    evaluation. Returns the full :class:`SimulationResult`.

    ``fault_plan`` injects deterministic failures (see
    :class:`~repro.faults.plan.FaultPlan`): crashed VMs lose their
    unfinished work, boot failures delay readiness, stragglers and
    transient retries inflate compute time, and spot preemption bursts
    kill every live spot VM they cover. A run with failures does not
    raise — it returns a partial result with ``failed_tasks`` /
    ``blocked_tasks`` populated and every started VM-second billed. An
    empty (or absent) plan leaves the executor on the exact fault-free
    code path.

    ``checkpoint`` enables periodic checkpointing on *spot* VMs (see
    :class:`~repro.faults.spot.CheckpointConfig`): computes stretch by the
    checkpoint overheads (billed — longer rental windows), and when a kill
    fires, the work covered by the last checkpoint is banked in the
    victim's :attr:`~repro.simulation.trace.TaskRecord.checkpoint_weight`
    for recovery to credit. On-demand VMs and schedules with no spot
    category ignore it entirely.

    When a :class:`~repro.obs.tracing.Tracer` is installed, the run is
    wrapped in a ``simulate.execute`` span carrying per-phase timings
    (setup / event loop / accounting) and event, transfer, and boot
    counters; with the default null tracer the instrumented path is
    bypassed entirely.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _execute(
            wf, platform, schedule, weights, dc_capacity=dc_capacity,
            per_second_billing=per_second_billing, validate=validate,
            fault_plan=fault_plan, checkpoint=checkpoint,
        )[0]
    with tracer.span(
        "simulate.execute", workflow=wf.name, n_tasks=wf.n_tasks,
        n_vms=schedule.n_vms,
    ) as span:
        result, stats = _execute(
            wf, platform, schedule, weights, dc_capacity=dc_capacity,
            per_second_billing=per_second_billing, validate=validate,
            fault_plan=fault_plan, checkpoint=checkpoint, collect_stats=True,
        )
        span.set(makespan=result.makespan, total_cost=result.total_cost,
                 **stats)
        tracer.count("sim.runs")
        tracer.count("sim.tasks", wf.n_tasks)
        tracer.count("sim.boots", result.n_vms)
        tracer.count("sim.events", stats["n_events"])
        tracer.count("sim.downloads", stats["n_downloads"])
        tracer.count("sim.uploads", stats["n_uploads"])
        if result.fault_events:
            span.set(n_faults=len(result.fault_events),
                     n_failed_tasks=len(result.failed_tasks))
            tracer.count("sim.faults", len(result.fault_events))
    return result


def _execute(
    wf: Workflow,
    platform: CloudPlatform,
    schedule: Schedule,
    weights: Mapping[str, float],
    *,
    dc_capacity: float = math.inf,
    per_second_billing: bool = True,
    validate: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional["CheckpointConfig"] = None,
    collect_stats: bool = False,
):
    """The discrete-event core; returns ``(result, stats-or-empty-dict)``."""
    t_wall0 = time.perf_counter() if collect_stats else 0.0
    if validate:
        schedule.validate(wf)
    missing = set(wf.tasks) - set(weights)
    if missing:
        raise SimulationError(f"weights missing for tasks {sorted(missing)[:5]}")

    # An empty plan must be indistinguishable from no plan: every fault
    # branch below is guarded by `plan`, so the zero-fault path is the
    # exact pre-fault-framework code. Checkpointing only ever touches spot
    # VMs, so a schedule without spot categories drops the config too.
    plan = fault_plan if fault_plan else None
    ckpt = checkpoint if (
        checkpoint is not None
        and any(c.spot for c in schedule.categories.values())
    ) else None
    fault_events: List[FaultEvent] = []
    if plan:
        # Inflate the affected weights (stragglers + transient re-runs),
        # then credit instructions a previous attempt's checkpoints made
        # durable; the recorded actual_weight is what the VM really
        # ground through on *this* attempt.
        weights = {
            tid: plan.remaining_weight(tid, w * plan.weight_factor(tid))
            for tid, w in weights.items()
        }

    bw = platform.bandwidth
    events = EventQueue()
    pool = FlowPool(capacity=dc_capacity)

    # --- static structures -------------------------------------------------
    vms: Dict[int, _VMState] = {}
    for vm_id, queue in schedule.queues().items():
        vms[vm_id] = _VMState(
            vm_id=vm_id, queue=queue, cores=schedule.categories[vm_id].cores
        )

    phase: Dict[str, int] = {tid: _PENDING for tid in wf.tasks}
    records: Dict[str, TaskRecord] = {}

    # Gates: per task, number of unmet input dependencies. A cross-VM edge
    # opens when its data reach the datacenter (upload completion); a
    # same-VM edge opens at the producer's compute end (data are local and
    # instantly visible — only relevant on multi-core VMs, where FIFO order
    # alone no longer serializes producer and consumer). External inputs
    # are at the DC at t=0 and add no gate.
    gates: Dict[str, int] = {}
    download_bytes: Dict[str, float] = {}
    for tid in wf.tasks:
        task = wf.task(tid)
        vm_id = schedule.vm_of(tid)
        nbytes = task.external_input
        for pred, data in wf.predecessors(tid).items():
            if schedule.vm_of(pred) != vm_id:
                nbytes += data
        gates[tid] = len(wf.predecessors(tid))
        download_bytes[tid] = nbytes

    # Pending upload flows per task (to know when outputs_at_dc settles).
    uploads_left: Dict[str, int] = {tid: 0 for tid in wf.tasks}
    tasks_remaining = wf.n_tasks

    # --- helpers ------------------------------------------------------------
    def try_start(vm: _VMState, now: float) -> None:
        """Dispatch queue-head tasks while a core is free and gates are open.

        Dispatch is strictly FIFO (a blocked head is never leapfrogged),
        matching the planner's per-VM ordering; with single-core categories
        this degenerates to the serial queue of §III-B.
        """
        while vm.idx < len(vm.queue) and vm.active < vm.cores:
            if vm.dead:
                return
            head = vm.queue[vm.idx]
            if phase[head] != _PENDING or gates[head] > 0:
                return
            if not vm.boot_requested:
                vm.boot_requested = True
                category = schedule.categories[vm.vm_id]
                vm.record = VMRecord(
                    vm_id=vm.vm_id, category=category, booked_at=now
                )
                boot_time = category.boot_time
                if plan:
                    extra = plan.extra_boots(vm.vm_id)
                    for k in range(extra):
                        fault_events.append(FaultEvent(
                            ts=now + boot_time * (k + 1),
                            kind="vm.boot_failure", vm_id=vm.vm_id,
                            info={"attempt": k + 1},
                        ))
                    boot_time *= 1 + extra
                events.push(now + boot_time, "boot", vm.vm_id)
                return
            if not vm.ready:
                return
            phase[head] = _DOWNLOADING
            rec = TaskRecord(tid=head, vm_id=vm.vm_id, download_start=now,
                             actual_weight=weights[head])
            records[head] = rec
            vm.active += 1
            vm.idx += 1
            nbytes = download_bytes[head]
            if nbytes > 0.0:
                pool.start(("dl", head), nbytes, bw, payload=head)
            else:
                begin_compute(head, now)

    def begin_compute(tid: str, now: float) -> None:
        rec = records[tid]
        rec.compute_start = now
        phase[tid] = _COMPUTING
        category = schedule.category_of(tid)
        duration = weights[tid] / category.speed
        if plan:
            _emit_compute_faults(tid, rec.vm_id, now, duration)
        if ckpt is not None and category.spot:
            # Periodic checkpoints stretch the compute; the overhead is
            # real VM time and bills like any other started second.
            duration = ckpt.checkpointed_duration(duration)
        events.push(now + duration, "compute", tid)

    def _emit_compute_faults(
        tid: str, vm_id: int, now: float, duration: float
    ) -> None:
        """Log straggler / transient-retry faults for one compute phase."""
        straggler = plan.stragglers.get(tid)
        if straggler is not None:
            fault_events.append(FaultEvent(
                ts=now, kind="task.straggler", vm_id=vm_id, task=tid,
                info={"factor": straggler},
            ))
        fractions = plan.task_retries.get(tid)
        if fractions:
            # `duration` covers all attempts; one clean attempt takes
            # duration / (1 + Σf), and attempt i dies f_i of the way in.
            attempt = duration / (1.0 + sum(fractions))
            t = now
            for i, f in enumerate(fractions):
                t += f * attempt
                fault_events.append(FaultEvent(
                    ts=t, kind="task.retry", vm_id=vm_id, task=tid,
                    info={"attempt": i + 1, "wasted_s": f * attempt},
                ))

    def on_boot(vm_id: int, now: float) -> None:
        vm = vms[vm_id]
        if vm.dead:
            return  # crashed while booting; nothing comes up
        vm.ready = True
        assert vm.record is not None
        vm.record.ready_at = now
        vm.last_compute_end = now
        vm.last_upload_end = now
        try_start(vm, now)

    def on_compute_done(tid: str, now: float) -> None:
        nonlocal tasks_remaining
        if plan and phase[tid] != _COMPUTING:
            return  # stale event: the task was killed by a crash
        vm = vms[schedule.vm_of(tid)]
        rec = records[tid]
        rec.compute_end = now
        rec.outputs_at_dc = now
        phase[tid] = _DONE
        tasks_remaining -= 1
        vm.last_compute_end = now
        assert vm.record is not None
        vm.record.n_tasks += 1
        # Launch uploads: edges to consumers on other VMs + external output.
        # Same-VM successors see the data instantly: their gate opens now.
        task = wf.task(tid)
        for consumer, data in wf.successors(tid).items():
            if schedule.vm_of(consumer) != vm.vm_id:
                uploads_left[tid] += 1
                pool.start(("up", tid, consumer), data, bw,
                           payload=(tid, consumer))
            else:
                gates[consumer] -= 1
                if gates[consumer] < 0:
                    raise SimulationError(f"gate underflow on {consumer!r}")
        if task.external_output > 0.0:
            uploads_left[tid] += 1
            pool.start(("upx", tid), task.external_output, bw,
                       payload=(tid, None))
        vm.active -= 1
        try_start(vm, now)

    def on_download_done(tid: str, now: float) -> None:
        begin_compute(tid, now)

    def on_upload_done(tid: str, consumer: Optional[str], now: float) -> None:
        vm = vms[schedule.vm_of(tid)]
        vm.last_upload_end = max(vm.last_upload_end, now)
        rec = records[tid]
        rec.outputs_at_dc = max(rec.outputs_at_dc, now)
        uploads_left[tid] -= 1
        if consumer is not None:
            gates[consumer] -= 1
            if gates[consumer] < 0:
                raise SimulationError(f"gate underflow on task {consumer!r}")
            cvm = vms[schedule.vm_of(consumer)]
            if cvm.idx < len(cvm.queue) and cvm.queue[cvm.idx] == consumer:
                try_start(cvm, now)

    def _bank_checkpoints(
        vm: _VMState, killed: List[str], now: float, warning_s: float
    ) -> float:
        """Bank durable checkpoint progress for a dying spot VM's computes.

        Returns the total instructions banked *this kill* (event payload).
        Each in-flight compute keeps the work covered by its last periodic
        checkpoint; a revocation warning of at least the checkpoint
        overhead additionally allows one emergency flush of the current
        state. Banked progress is absolute (prior credit included) so
        recovery can merge it monotonically.
        """
        category = schedule.categories[vm.vm_id]
        if ckpt is None or not category.spot:
            return 0.0
        banked = 0.0
        for tid in killed:
            if phase[tid] != _COMPUTING:
                continue  # downloads and queued tasks have no progress
            rec = records[tid]
            elapsed = now - rec.compute_start
            work_s = weights[tid] / category.speed
            durable = ckpt.durable_work_s(elapsed)
            if warning_s >= ckpt.overhead_s:
                durable = max(durable, ckpt.flush_work_s(elapsed))
            durable = min(durable, work_s)
            if durable <= 0.0:
                continue
            new = durable * category.speed
            rec.checkpoint_weight = plan.checkpoints.get(tid, 0.0) + new
            banked += new
        return banked

    def _kill_vm(
        vm_id: int, now: float, *, kind: str, warning_s: float = 0.0,
        extra: Optional[Dict] = None,
    ) -> bool:
        """Kill a VM: lose its unfinished work, keep its durable outputs.

        Completed tasks (and uploads already streaming, which are modeled
        as datacenter-side and therefore durable) survive; active
        downloads/computes and the queued remainder fail. A kill on a VM
        that was never provisioned, already died, or already finished its
        queue is a no-op. Billing runs to the kill instant — the paper's
        cost model charges for started seconds, useful or not.
        """
        vm = vms[vm_id]
        if vm.dead or not vm.boot_requested:
            return False
        killed = [
            tid for tid in vm.queue[:vm.idx]
            if phase[tid] in (_DOWNLOADING, _COMPUTING)
        ] + [
            tid for tid in vm.queue[vm.idx:] if phase[tid] == _PENDING
        ]
        if not killed:
            return False  # queue fully executed; the VM was done anyway
        banked = _bank_checkpoints(vm, killed, now, warning_s)
        vm.dead = True
        for tid in killed:
            if phase[tid] == _DOWNLOADING:
                pool.cancel(("dl", tid))
            if tid in records:
                records[tid].failed = True
            phase[tid] = _FAILED
        vm.active = 0
        assert vm.record is not None
        vm.record.crashed_at = now
        if not vm.ready:
            # Killed mid-boot: never billed a productive second, but the
            # booking fee is still owed (ready == end == kill instant).
            vm.record.ready_at = now
        info = {"killed": sorted(killed), "was_ready": vm.ready}
        if banked > 0.0:
            info["checkpointed_weight"] = banked
        if extra:
            info.update(extra)
        fault_events.append(FaultEvent(
            ts=now, kind=kind, vm_id=vm_id, info=info,
        ))
        return True

    def on_crash(vm_id: int, now: float) -> None:
        _kill_vm(vm_id, now, kind="vm.crash")

    def on_preempt(burst_idx: int, now: float) -> None:
        """Fire one correlated revocation burst: kill every covered spot VM.

        Only spot-category VMs are eligible (on-demand capacity never
        notices the market); a burst with a category name restricts the
        blast radius to that category. VMs that already finished their
        queue shut down normally and are not marked preempted.
        """
        burst = plan.preemptions[burst_idx]
        for vm_id in sorted(vms):
            category = schedule.categories[vm_id]
            if not category.spot:
                continue
            if burst.category is not None and category.name != burst.category:
                continue
            if _kill_vm(
                vm_id, now, kind="vm.preempted",
                warning_s=burst.warning_s,
                extra={"category": category.name,
                       "warning_s": burst.warning_s},
            ):
                vm = vms[vm_id]
                assert vm.record is not None
                vm.record.preempted = True

    # --- main loop ----------------------------------------------------------
    t_wall_setup = time.perf_counter() if collect_stats else 0.0
    if plan:
        # Crash and preemption events enter the queue up front; the
        # handlers ignore ones that land on unprovisioned or finished VMs.
        # At equal timestamps the kill wins (lower sequence number) — a
        # task completing at the very kill instant is lost,
        # deterministically.
        for vm_id in sorted(plan.crashes):
            if vm_id in vms:
                events.push(plan.crashes[vm_id], "crash", vm_id)
        for i, burst in enumerate(plan.preemptions):
            events.push(burst.at, "preempt", i)
    for vm in vms.values():
        try_start(vm, 0.0)
    if all(not vm.boot_requested for vm in vms.values()):
        raise SimulationError(
            "no VM could be booked at time 0 — no entry task is dispatchable"
        )

    guard = 0
    guard_limit = 20 * (wf.n_tasks + wf.n_edges) + 100
    if plan:
        guard_limit += 20 * plan.size
    while events or pool:
        guard += 1
        if guard > guard_limit:
            raise SimulationError("simulation did not converge (event storm)")
        t_event = events.peek_time()
        t_flow = pool.next_completion()
        if t_flow <= t_event:
            for flow_id, payload in pool.advance(t_flow):
                kind = flow_id[0]
                if kind == "dl":
                    on_download_done(payload, t_flow)
                else:
                    tid, consumer = payload
                    on_upload_done(tid, consumer, t_flow)
        else:
            now, kind, payload = events.pop()
            for flow_id, fpayload in pool.advance(now):
                if flow_id[0] == "dl":
                    on_download_done(fpayload, now)
                else:
                    up_tid, consumer = fpayload
                    on_upload_done(up_tid, consumer, now)
            if kind == "boot":
                on_boot(payload, now)
            elif kind == "compute":
                on_compute_done(payload, now)
            elif kind == "crash":
                on_crash(payload, now)
            elif kind == "preempt":
                on_preempt(payload, now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

    failed_tasks = (
        [tid for tid in schedule.order if phase[tid] == _FAILED] if plan else []
    )
    blocked_tasks = (
        [tid for tid in schedule.order if phase[tid] == _PENDING] if plan else []
    )
    if tasks_remaining != 0 and not failed_tasks:
        stuck = sorted(tid for tid, p in phase.items() if p != _DONE)
        raise SimulationError(
            f"{tasks_remaining} tasks never executed, e.g. {stuck[:5]} — "
            "schedule deadlock (invalid dispatch order?)"
        )

    # --- accounting ---------------------------------------------------------
    t_wall_loop = time.perf_counter() if collect_stats else 0.0
    vm_records: List[VMRecord] = []
    for vm in sorted(vms.values(), key=lambda v: v.vm_id):
        if plan and vm.record is None:
            continue  # never provisioned: an upstream failure starved it
        assert vm.record is not None
        end_at = max(vm.last_compute_end, vm.last_upload_end)
        if plan:
            if vm.dead:
                # Billing stops at the crash; the tail from the last useful
                # second to the crash is the lost VM-hours the paper's cost
                # model still charges for.
                end_at = vm.record.crashed_at or end_at
            else:
                retire = plan.retires.get(vm.vm_id)
                if retire is not None and retire > end_at >= vm.record.ready_at:
                    # Recovery bookkeeping: a previously crashed VM whose
                    # surviving tasks finish early still bills its full
                    # pre-crash rental window on replays.
                    end_at = retire
        vm.record.end_at = end_at
        vm_records.append(vm.record)

    if not vm_records:  # pragma: no cover - needs a plan crashing everything
        raise SimulationError("no VM was ever provisioned")
    start = min(r.booked_at for r in vm_records)
    if plan and (failed_tasks or blocked_tasks):
        outputs = [
            rec.outputs_at_dc for rec in records.values() if not rec.failed
        ]
        end = max([r.end_at for r in vm_records] + outputs)
    else:
        end = max(
            max(r.end_at for r in vm_records),
            max(rec.outputs_at_dc for rec in records.values()),
        )
    if fault_events:
        # Events are appended when scheduled (a retry's timestamp lies in
        # the future); present the log in fired order.
        fault_events.sort(key=lambda e: (e.ts, e.kind, e.vm_id or -1,
                                         e.task or ""))
    makespan = end - start
    cost = CostBreakdown.build(
        platform,
        wf,
        makespan,
        ((r.category, r.ready_at, r.end_at) for r in vm_records),
        per_second_billing=per_second_billing,
    )
    result = SimulationResult(
        makespan=makespan, start=start, end=end, cost=cost,
        tasks=records, vms=vm_records,
        fault_events=fault_events, failed_tasks=failed_tasks,
        blocked_tasks=blocked_tasks,
    )
    stats: Dict[str, float] = {}
    if collect_stats:
        n_uploads = 0
        for tid in wf.tasks:
            vm_id = schedule.vm_of(tid)
            n_uploads += sum(
                1 for consumer in wf.successors(tid)
                if schedule.vm_of(consumer) != vm_id
            )
            if wf.task(tid).external_output > 0.0:
                n_uploads += 1
        stats = {
            "n_events": guard,
            "n_downloads": sum(1 for b in download_bytes.values() if b > 0.0),
            "n_uploads": n_uploads,
            "setup_s": t_wall_setup - t_wall0,
            "loop_s": t_wall_loop - t_wall_setup,
            "accounting_s": time.perf_counter() - t_wall_loop,
        }
    return result, stats


def evaluate_schedule(
    wf: Workflow,
    platform: CloudPlatform,
    schedule: Schedule,
    *,
    use_conservative: bool = True,
    dc_capacity: float = math.inf,
    validate: bool = False,
) -> SimulationResult:
    """Deterministic evaluation of a schedule (Algorithm 5's ``simulate``).

    Runs the executor with the planning weights (``w̄ + σ`` by default) and
    the paper's infinite-DC assumption; returns makespan ``t_calc,wf`` and
    cost ``c_tot`` inside a full :class:`SimulationResult`.
    """
    weights = conservative_weights(wf) if use_conservative else mean_weights(wf)
    return execute_schedule(
        wf, platform, schedule, weights,
        dc_capacity=dc_capacity, validate=validate,
    )
