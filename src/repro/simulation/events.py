"""Discrete-event primitives.

A tiny, allocation-light event queue: events are ``(time, seq, kind,
payload)`` tuples in a binary heap. The monotonically increasing ``seq``
makes ordering total and deterministic for simultaneous events (FIFO within
a timestamp), which keeps whole simulations reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        """Schedule an event at ``time`` (must not be NaN/negative)."""
        if not time >= 0.0:  # also rejects NaN
            raise ValueError(f"event time must be >= 0, got {time}")
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, str, Any]:
        """Remove and return the earliest ``(time, kind, payload)``."""
        time, _seq, kind, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def peek_time(self) -> float:
        """Time of the earliest event, ``inf`` when empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
