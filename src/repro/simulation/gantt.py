"""ASCII Gantt rendering of execution traces.

A developer-facing view of a :class:`~repro.simulation.trace.SimulationResult`:
one row per VM, time flowing rightward, with download / compute / upload
phases distinguished. Used by examples and invaluable when debugging
schedules; deliberately plain text so it works in logs and docstrings.

Legend: ``.`` idle (billed), ``▒`` download, ``█`` compute, ``░`` upload,
``|`` boot completion. Rows are labelled ``vm<id>/<category>``. On
fault-injected runs a ``✗`` marks the crash instant of a dead VM; the
zero-fault rendering is byte-identical to what it was before fault
injection existed.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional

from .trace import SimulationResult, TaskRecord

__all__ = ["render_gantt", "render_task_table"]

_IDLE, _DOWN, _COMP, _UP, _CRASH = ".", "▒", "█", "░", "✗"


def _paint(row: List[str], start: float, end: float, t0: float, scale: float,
           char: str, width: int) -> None:
    """Fill ``row`` cells covering [start, end) with ``char``.

    Compute cells win over transfer cells; transfer cells win over idle.
    """
    rank = {_IDLE: 0, _UP: 1, _DOWN: 2, _COMP: 3}
    a = int((start - t0) * scale)
    b = max(int((end - t0) * scale), a + (1 if end > start else 0))
    for i in range(max(a, 0), min(b, width)):
        if rank[char] >= rank.get(row[i], 0):
            row[i] = char


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 80,
    show_boot: bool = True,
) -> str:
    """Render the execution as an ASCII Gantt chart, one row per VM."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    t0 = result.start
    span = max(result.end - t0, 1e-9)
    scale = width / span

    tasks_by_vm: Dict[int, List[TaskRecord]] = {}
    for rec in result.tasks.values():
        tasks_by_vm.setdefault(rec.vm_id, []).append(rec)

    out = io.StringIO()
    label_width = max(
        (len(f"vm{v.vm_id}/{v.category.name}") for v in result.vms), default=8
    )
    for vm in sorted(result.vms, key=lambda v: v.vm_id):
        row = [" "] * width
        # billed window = idle baseline
        _paint(row, vm.ready_at, vm.end_at, t0, scale, _IDLE, width)
        for rec in sorted(tasks_by_vm.get(vm.vm_id, []),
                          key=lambda r: r.download_start):
            _paint(row, rec.download_start, rec.compute_start, t0, scale,
                   _DOWN, width)
            _paint(row, rec.compute_start, rec.compute_end, t0, scale,
                   _COMP, width)
            if rec.outputs_at_dc > rec.compute_end:
                _paint(row, rec.compute_end, rec.outputs_at_dc, t0, scale,
                       _UP, width)
        if show_boot:
            boot_idx = int((vm.ready_at - t0) * scale)
            if 0 <= boot_idx < width and row[boot_idx] == _IDLE:
                row[boot_idx] = "|"
        if vm.crashed_at is not None:
            crash_idx = min(int((vm.crashed_at - t0) * scale), width - 1)
            if crash_idx >= 0:
                row[crash_idx] = _CRASH
        label = f"vm{vm.vm_id}/{vm.category.name}".ljust(label_width)
        out.write(f"{label} {''.join(row)}\n")
    axis = "0".ljust(width - 9) + f"{span:8.0f}s"
    out.write(f"{''.ljust(label_width)} {axis}\n")
    out.write(
        f"legend: {_DOWN} download  {_COMP} compute  {_UP} upload  "
        f"{_IDLE} idle (billed)  | boot done\n"
    )
    if result.fault_events:
        out.write(
            f"faults: {len(result.fault_events)} injected  "
            f"{_CRASH} crash  failed={len(result.failed_tasks)}  "
            f"blocked={len(result.blocked_tasks)}\n"
        )
    return out.getvalue()


def render_task_table(
    result: SimulationResult, *, limit: Optional[int] = None
) -> str:
    """Tabular per-task timeline, sorted by compute start."""
    rows = sorted(result.tasks.values(), key=lambda r: r.compute_start)
    if limit is not None:
        rows = rows[:limit]
    out = io.StringIO()
    out.write(
        f"{'task':>24} {'vm':>4} {'dl_start':>10} {'c_start':>10} "
        f"{'c_end':>10} {'at_dc':>10}\n"
    )
    for rec in rows:
        out.write(
            f"{rec.tid:>24} {rec.vm_id:>4} {rec.download_start:>10.1f} "
            f"{rec.compute_start:>10.1f} {rec.compute_end:>10.1f} "
            f"{rec.outputs_at_dc:>10.1f}\n"
        )
    return out.getvalue()
