"""Discrete-event simulation substrate (the paper's SimDag/SimGrid role)."""

from .bandwidth import FlowPool
from .events import EventQueue
from .gantt import render_gantt, render_task_table
from .executor import (
    conservative_weights,
    evaluate_schedule,
    execute_schedule,
    mean_weights,
    sample_weights,
)
from .trace import SimulationResult, TaskRecord, VMRecord
from .usage import UsageReport, VMUsage, analyze_usage

__all__ = [
    "EventQueue",
    "FlowPool",
    "SimulationResult",
    "TaskRecord",
    "UsageReport",
    "VMRecord",
    "VMUsage",
    "analyze_usage",
    "conservative_weights",
    "evaluate_schedule",
    "execute_schedule",
    "mean_weights",
    "render_gantt",
    "render_task_table",
    "sample_weights",
]
