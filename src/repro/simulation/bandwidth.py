"""Fluid-flow bandwidth model with optional datacenter contention.

The paper assumes "the datacenter bandwidth is large enough to feed all
processing units" (§III-B) — each transfer then progresses at the full
VM↔DC link rate ``bw`` independently of the others. The paper also observes
(§V-B) that this assumption breaks for LIGO near the minimal budget: the
datacenter becomes a bottleneck and budgets are overrun.

:class:`FlowPool` models both regimes. Every transfer is a *flow* with a
remaining byte count and a per-flow cap (its link rate). With infinite
aggregate capacity each flow runs at its cap; with finite capacity ``C`` the
active flows share ``C`` max-min fairly (water-filling), each still capped
by its link. Rates are recomputed whenever the set of active flows changes,
which is the standard fluid approximation used by SimGrid itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Tuple

from ..errors import SimulationError

__all__ = ["FlowPool"]

_EPS_BYTES = 1e-6
#: A flow whose time-to-finish is below this (relative to the clock) is
#: complete: adding it to `now` would not change the float value anyway.
_EPS_TIME = 1e-9


@dataclass
class _Flow:
    remaining: float
    cap: float
    payload: Any
    rate: float = 0.0


class FlowPool:
    """A set of concurrent data flows over a shared aggregate capacity.

    Parameters
    ----------
    capacity:
        Aggregate datacenter capacity in bytes/s; ``inf`` (default)
        reproduces the paper's main assumption.
    """

    def __init__(self, capacity: float = math.inf) -> None:
        if not capacity > 0.0:
            raise SimulationError(f"pool capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.now = 0.0
        self._flows: Dict[Hashable, _Flow] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __bool__(self) -> bool:
        return bool(self._flows)

    def start(
        self, flow_id: Hashable, nbytes: float, cap: float, payload: Any = None
    ) -> None:
        """Begin a flow of ``nbytes`` at the current time.

        Zero-byte flows are legal; they complete at the very next
        :meth:`advance` call (i.e. immediately).
        """
        if flow_id in self._flows:
            raise SimulationError(f"duplicate flow id {flow_id!r}")
        if nbytes < 0.0:
            raise SimulationError(f"flow {flow_id!r}: negative size {nbytes}")
        if not cap > 0.0:
            raise SimulationError(f"flow {flow_id!r}: cap must be > 0, got {cap}")
        self._flows[flow_id] = _Flow(remaining=nbytes, cap=cap, payload=payload)
        self._recompute_rates()

    def cancel(self, flow_id: Hashable) -> bool:
        """Abort an in-flight flow without completing it.

        Used by fault injection: a VM crash kills its active download, so
        the flow must leave the pool (freeing its bandwidth share) without
        ever being reported by :meth:`advance`. Returns whether the flow
        existed.
        """
        if flow_id not in self._flows:
            return False
        del self._flows[flow_id]
        self._recompute_rates()
        return True

    def _recompute_rates(self) -> None:
        """Max-min fair share of ``capacity`` among active flows.

        Water-filling: process flows by ascending cap; each takes
        ``min(cap, remaining_capacity / remaining_flows)``.
        """
        flows = self._flows
        if not flows:
            return
        if math.isinf(self.capacity):
            for f in flows.values():
                f.rate = f.cap
            return
        items = sorted(flows.values(), key=lambda f: f.cap)
        left = self.capacity
        n = len(items)
        for i, f in enumerate(items):
            share = left / (n - i)
            f.rate = min(f.cap, share)
            left -= f.rate

    # ------------------------------------------------------------------
    def _time_left(self, f: _Flow) -> float:
        """Seconds until ``f`` completes; 0 when it is effectively done."""
        if f.remaining <= _EPS_BYTES:
            return 0.0
        left = f.remaining / f.rate if f.rate > 0.0 else math.inf
        # Residuals too small to move the float clock count as done.
        if left <= _EPS_TIME * max(1.0, self.now):
            return 0.0
        return left

    def next_completion(self) -> float:
        """Earliest time any active flow finishes; ``inf`` when idle."""
        best = math.inf
        for f in self._flows.values():
            best = min(best, self.now + self._time_left(f))
        return best

    def advance(self, t: float) -> List[Tuple[Hashable, Any]]:
        """Progress every flow to time ``t``; return completed flows.

        Returns ``(flow_id, payload)`` pairs, in deterministic (insertion)
        order. Rates are recomputed when any flow completes.
        """
        if t < self.now - 1e-9:
            raise SimulationError(f"time went backwards: {t} < {self.now}")
        dt = max(t - self.now, 0.0)
        self.now = t
        if not self._flows:
            return []
        done: List[Tuple[Hashable, Any]] = []
        for fid, f in self._flows.items():
            f.remaining -= f.rate * dt
            if self._time_left(f) == 0.0:
                done.append((fid, f.payload))
        if done:
            for fid, _ in done:
                del self._flows[fid]
            self._recompute_rates()
        return done
