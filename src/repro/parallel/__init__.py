"""Seed-deterministic multiprocess execution fabric.

Splits Monte Carlo replication loops and sweep grids across worker
processes without changing a single returned number: sharding follows the
``SeedSequence`` spawn tree (see :func:`repro.rng.spawn_seeds`), results
merge in shard order, and a crashed worker's shards are retried on a
respawned pool. See ``docs/PARALLEL.md`` for the determinism contract.
"""

from .pool import WorkerPool, resolve_workers
from .shard import MIN_SHARD_SIZE, Shard, ShardPlan, ShardStats

__all__ = [
    "MIN_SHARD_SIZE",
    "Shard",
    "ShardPlan",
    "ShardStats",
    "WorkerPool",
    "resolve_workers",
]
