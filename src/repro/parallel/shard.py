"""Seed-deterministic sharding of Monte Carlo replication loops.

The §V-A protocol executes one schedule ``n_reps`` times under sampled
actual weights; :class:`ShardPlan` splits that loop into contiguous
per-worker shards whose merged results are **bit-identical to the serial
run regardless of worker count or completion order**. The contract rests
on two facts:

* replication ``r`` draws its weights from the ``r``-th
  :func:`repro.rng.spawn` substream of the point's generator — a pure
  function of the root seed and ``r``, so a worker holding the ``r``-th
  :class:`numpy.random.SeedSequence` reproduces the serial draw exactly
  (:func:`repro.rng.spawn_seeds` hands those out without building
  generators);
* each replication's outputs (makespan, cost, VM count, validity) are a
  deterministic function of its weights, so concatenating per-replication
  values *in shard order* reconstructs the serial sequence no matter
  which worker finished first.

:class:`ShardStats` is the reduction half of the contract: per-shard
running sums / sums of squares / min / max merge associatively, which is
what the statistical regression gate consumes (``mean``/``std``/``n``)
without ever shipping full sample vectors around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["Shard", "ShardPlan", "ShardStats", "MIN_SHARD_SIZE"]

#: Below this many items per prospective shard the plan collapses to a
#: single serial shard — process dispatch costs more than it saves on
#: tiny replication counts (the auto-fallback the benchmarks assert).
MIN_SHARD_SIZE = 4


@dataclass(frozen=True)
class Shard:
    """One contiguous block ``[start, stop)`` of a replication loop."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of replications in the shard."""
        return self.stop - self.start

    def slice(self, items: Sequence) -> Sequence:
        """The shard's slice of a per-replication sequence."""
        return items[self.start:self.stop]


@dataclass(frozen=True)
class ShardPlan:
    """How an ``n_items`` loop splits across ``n_workers`` processes.

    Shards are contiguous and cover ``range(n_items)`` exactly once, in
    order — the merge step concatenates shard results by ``index`` and
    recovers the serial sequence. Use :meth:`plan`; the constructor is for
    tests.
    """

    n_items: int
    shards: Tuple[Shard, ...]

    @classmethod
    def plan(
        cls,
        n_items: int,
        workers: int,
        *,
        min_shard_size: int = MIN_SHARD_SIZE,
        shards_per_worker: int = 1,
    ) -> "ShardPlan":
        """Split ``n_items`` into at most ``workers × shards_per_worker``
        contiguous shards of at least ``min_shard_size`` items.

        ``workers <= 0`` (or too few items to fill two minimum-size
        shards) yields the single-shard plan — the caller's signal to stay
        serial. ``shards_per_worker > 1`` over-partitions for better load
        balance when per-item cost varies.
        """
        if n_items < 0:
            raise ValueError(f"cannot shard {n_items} items")
        if min_shard_size < 1:
            raise ValueError(
                f"min_shard_size must be >= 1, got {min_shard_size}"
            )
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}"
            )
        if n_items == 0:
            return cls(n_items=0, shards=())
        n_shards = max(1, workers) * shards_per_worker
        n_shards = min(n_shards, n_items // min_shard_size)
        if workers <= 0 or n_shards <= 1:
            return cls(
                n_items=n_items, shards=(Shard(index=0, start=0, stop=n_items),)
            )
        base, rem = divmod(n_items, n_shards)
        shards: List[Shard] = []
        start = 0
        for i in range(n_shards):
            stop = start + base + (1 if i < rem else 0)
            shards.append(Shard(index=i, start=start, stop=stop))
            start = stop
        return cls(n_items=n_items, shards=tuple(shards))

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def is_serial(self) -> bool:
        """True when the plan degenerated to at most one shard."""
        return len(self.shards) <= 1

    def merge(self, per_shard: Sequence[Sequence]) -> List:
        """Concatenate per-shard result lists back into serial order.

        ``per_shard[i]`` must hold shard ``i``'s per-replication results;
        lengths are checked so a lost shard cannot silently shift every
        later replication.
        """
        if len(per_shard) != len(self.shards):
            raise ValueError(
                f"expected {len(self.shards)} shard results, got {len(per_shard)}"
            )
        merged: List = []
        for shard, results in zip(self.shards, per_shard):
            if len(results) != shard.size:
                raise ValueError(
                    f"shard {shard.index} returned {len(results)} results "
                    f"for {shard.size} replications"
                )
            merged.extend(results)
        return merged


@dataclass
class ShardStats:
    """Associatively mergeable sample statistics of one shard.

    Tracks ``n`` / ``sum`` / ``sum_sq`` / ``min`` / ``max`` plus the raw
    per-replication values (in shard order), so the merge of all shards
    both reduces the moments and reconstructs the serial value sequence.
    """

    n: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    values: List[float] = field(default_factory=list)

    @classmethod
    def of(cls, values: Iterable[float]) -> "ShardStats":
        """Fold an iterable of samples into one stats block."""
        stats = cls()
        for value in values:
            stats.add(value)
        return stats

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.n += 1
        self.total += value
        self.total_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.values.append(value)

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self.total / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 while ``n < 2``)."""
        if self.n < 2:
            return 0.0
        var = (self.total_sq - self.n * self.mean * self.mean) / (self.n - 1)
        return math.sqrt(max(var, 0.0))

    @classmethod
    def merge(cls, parts: Sequence["ShardStats"]) -> "ShardStats":
        """Reduce per-shard stats in shard order into one block."""
        out = cls()
        for part in parts:
            out.n += part.n
            out.total += part.total
            out.total_sq += part.total_sq
            out.minimum = min(out.minimum, part.minimum)
            out.maximum = max(out.maximum, part.maximum)
            out.values.extend(part.values)
        return out

    def to_dict(self) -> dict:
        """JSON-ready ``{mean, std, n, min, max}`` (for ledger extras)."""
        return {
            "mean": self.mean,
            "std": self.std,
            "n": self.n,
            "min": self.minimum if self.n else 0.0,
            "max": self.maximum if self.n else 0.0,
        }
