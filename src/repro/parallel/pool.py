"""Crash-tolerant process pool with ordered results and pool metrics.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the semantics the rest of :mod:`repro` needs:

* **ordered results** — :meth:`WorkerPool.map` returns results positionally,
  never by completion order, so :class:`repro.parallel.ShardPlan` merges
  stay bit-identical to the serial loop;
* **bounded in-flight work** — at most ``max_inflight`` items are submitted
  at once, so a thousand-cell sweep does not pickle a thousand workflows
  up front;
* **crash recovery** — a dying worker poisons every in-flight future with
  :class:`~concurrent.futures.process.BrokenProcessPool`; the pool counts
  an attempt against each affected item, publishes a ``worker.crashed``
  event, bumps the ``worker_crashes`` counter (rendered as
  ``repro_worker_crashes_total`` by the Prometheus exporter), respawns the
  executor and requeues the items. An item over ``max_retries`` raises
  :class:`repro.errors.WorkerCrashError` — deliberately not a
  ``ReproError`` so callers with their own retry policy may retry it;
* **fork hygiene** — workers start by resetting the process-global ledger
  and tracer: a forked child inherits the parent's open SQLite connection
  and span buffers, and must never write to either. All recording happens
  in the parent, in serial order;
* **trace propagation** — when the *parent's* tracer is live, each item
  runs under a worker-local :class:`~repro.obs.tracing.Tracer` sharing
  the parent's ``trace_id``; its span/counter payload rides back with the
  result and is merged into the parent tracer
  (:meth:`~repro.obs.tracing.Tracer.merge_payload`), so one exported
  trace covers the whole fan-out. Untraced runs ship no context and pay
  nothing.

Shard functions must be module-level (picklable); results flow back as
plain values. Per-worker heartbeat/latency aggregates are available from
:meth:`WorkerPool.worker_stats` and are pushed into a
:class:`repro.service.metrics.MetricsRegistry` when one is supplied.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import WorkerConfigError, WorkerCrashError
from ..obs.events import WORKER_CRASHED
from ..obs.tracing import Tracer, get_tracer, use_tracer

__all__ = ["WorkerPool", "resolve_workers"]


def resolve_workers(workers: int) -> int:
    """Normalise a user-facing ``workers`` knob.

    ``0`` (and ``1``) mean serial; negative means "all available cores";
    anything else passes through. Callers use the result to decide whether
    to build a pool at all.

    When the knob is left at its default (``0``), a ``REPRO_WORKERS``
    environment variable overrides it, so ops can tune fan-out without
    touching specs or CLI flags. The override must be a positive
    integer; anything else raises
    :class:`~repro.errors.WorkerConfigError` — a silent fallback to
    serial would hide the typo. An explicit flag always beats the
    environment.
    """
    if workers == 0:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None and env.strip():
            try:
                value = int(env)
            except ValueError:
                raise WorkerConfigError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
            if value <= 0:
                raise WorkerConfigError(
                    f"REPRO_WORKERS must be positive, got {value}"
                )
            return value
    if workers < 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return multiprocessing.cpu_count()
    return workers


def _worker_initializer() -> None:
    """Runs once in every worker process before it takes work.

    Under the default ``fork`` start method the child inherits the
    parent's process-global ledger (an open SQLite connection that must
    only be used from the parent) and tracer. Reset both to their null
    implementations: workers compute and return values; the parent
    records.

    Workers also ignore SIGINT: a terminal Ctrl-C reaches the whole
    foreground process group, but shutdown belongs to the parent — it
    drains in-flight work and closes the pool, and workers must not die
    mid-task (or spray KeyboardInterrupt tracebacks) underneath it.
    """
    import signal

    from ..obs.ledger import set_ledger
    from ..obs.tracing import set_tracer

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    set_ledger(None)
    set_tracer(None)


def _invoke(
    fn: Callable[[Any], Any],
    item: Any,
    trace_ctx: Optional[Dict[str, Any]] = None,
) -> Tuple[Any, int, float, Optional[Dict[str, Any]]]:
    """Worker-side wrapper: run ``fn(item)``, report pid and latency.

    When the parent's tracer is live it ships a ``trace_ctx`` carrying
    its ``trace_id``; the wrapper then installs a worker-local
    :class:`~repro.obs.tracing.Tracer` under the same id for the
    duration of the item and returns its
    :meth:`~repro.obs.tracing.Tracer.export_payload` as the fourth
    element, so the parent can merge worker spans/counters into one
    request trace. With no context (the common untraced path) the
    fourth element is ``None`` and tracing costs nothing — the
    initializer's null tracer stays in place.
    """
    start = time.perf_counter()
    if trace_ctx is None:
        result = fn(item)
        return result, os.getpid(), time.perf_counter() - start, None
    tracer = Tracer(trace_id=trace_ctx.get("trace_id"))
    with use_tracer(tracer):
        result = fn(item)
    payload = tracer.export_payload()
    return result, os.getpid(), time.perf_counter() - start, payload


class WorkerPool:
    """A crash-tolerant, metrics-instrumented process pool.

    Parameters
    ----------
    workers:
        Number of worker processes (must be >= 1 — resolve serial
        fallback *before* constructing a pool, e.g. via
        :func:`resolve_workers` and :meth:`ShardPlan.plan`).
    max_retries:
        How many times one item may be requeued after a worker crash
        before :class:`WorkerCrashError` is raised.
    max_inflight:
        Cap on concurrently submitted items (default ``2 × workers``).
    metrics:
        Optional :class:`repro.service.metrics.MetricsRegistry`; receives
        ``worker_tasks`` / ``worker_crashes`` / ``worker_respawns``
        counters and ``worker_task_seconds`` latency observations.
    events:
        Optional :class:`repro.obs.events.EventBus`; receives
        ``worker.crashed`` events.
    mp_context:
        Optional multiprocessing context name (``"fork"`` / ``"spawn"``);
        defaults to the platform default.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_retries: int = 2,
        max_inflight: Optional[int] = None,
        metrics: Optional[Any] = None,
        events: Optional[Any] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"WorkerPool needs >= 1 worker, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.max_retries = max_retries
        self.max_inflight = max_inflight or 2 * workers
        self._metrics = metrics
        self._events = events
        self._ctx = (
            multiprocessing.get_context(mp_context) if mp_context else None
        )
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.n_crashes = 0
        self.n_respawns = 0
        # pid -> {"tasks": int, "busy_s": float, "last_seen": float}
        self._worker_stats: Dict[int, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # executor lifecycle

    def _get_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._ctx,
                    initializer=_worker_initializer,
                )
            return self._executor

    def _respawn(self) -> ProcessPoolExecutor:
        """Tear down a broken executor and start a fresh one."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            self.n_respawns += 1
        if self._metrics is not None:
            self._metrics.incr("worker_respawns")
        return self._get_executor()

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # bookkeeping

    def _note_completion(self, pid: int, elapsed: float) -> None:
        stats = self._worker_stats.setdefault(
            pid, {"tasks": 0, "busy_s": 0.0, "last_seen": 0.0}
        )
        stats["tasks"] += 1
        stats["busy_s"] += elapsed
        stats["last_seen"] = time.time()
        if self._metrics is not None:
            self._metrics.incr("worker_tasks")
            self._metrics.observe("worker_task_seconds", elapsed)

    def _note_crash(self, indices: Sequence[int], attempt: int) -> None:
        self.n_crashes += 1
        if self._metrics is not None:
            self._metrics.incr("worker_crashes")
        if self._events is not None:
            self._events.publish(
                WORKER_CRASHED,
                shard_indices=sorted(int(i) for i in indices),
                attempt=attempt,
                pool_workers=self.workers,
            )

    def worker_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-worker-pid heartbeat snapshot: tasks, busy seconds, last_seen."""
        return {pid: dict(stats) for pid, stats in self._worker_stats.items()}

    # ------------------------------------------------------------------
    # execution

    def run(self, fn: Callable[[Any], Any], item: Any,
            timeout: Optional[float] = None) -> Any:
        """Run one ``fn(item)`` in a worker, with crash retry.

        Used by the service's process executor for single jobs. A
        ``timeout`` bounds each attempt; crashes are retried like
        :meth:`map`, timeouts are not (the caller owns deadline policy).
        """
        (result,) = self.map(fn, [item], timeout=timeout)
        return result

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run ``fn`` over ``items`` in worker processes, results in order.

        Items are dispatched with at most :attr:`max_inflight` outstanding.
        A worker crash fails every in-flight future; each affected item is
        requeued (up to :attr:`max_retries` extra attempts each) on a
        respawned executor. Exceptions raised by ``fn`` itself propagate
        unchanged — they are the item's answer, not an infrastructure
        fault, so they are never retried.
        """
        results: List[Any] = [None] * len(items)
        pending: deque = deque(range(len(items)))
        attempts = [0] * len(items)
        inflight: Dict[Future, int] = {}
        deadline = None if timeout is None else time.monotonic() + timeout

        # Propagate the live tracer's identity to workers; their spans
        # come back in each item's payload and merge under the span the
        # caller currently has open (one trace across the fork seam).
        parent_tracer = get_tracer()
        trace_ctx: Optional[Dict[str, Any]] = None
        merge_parent_id: Optional[int] = None
        if parent_tracer.enabled:
            trace_ctx = {"trace_id": parent_tracer.trace_id}
            merge_parent_id = parent_tracer.current_span_id()

        executor = self._get_executor()
        while pending or inflight:
            while pending and len(inflight) < self.max_inflight:
                index = pending.popleft()
                future = executor.submit(
                    _invoke, fn, items[index], trace_ctx)
                inflight[future] = index
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    for future in inflight:
                        future.cancel()
                    raise TimeoutError(
                        f"WorkerPool.map timed out with {len(inflight)} "
                        f"in-flight and {len(pending)} queued items"
                    )
            done, _ = wait(
                inflight, timeout=remaining, return_when=FIRST_COMPLETED
            )
            crashed = False
            for future in done:
                index = inflight.pop(future)
                try:
                    value, pid, elapsed, span_payload = future.result()
                except BrokenProcessPool:
                    # The whole pool is poisoned: every other in-flight
                    # future fails too. Collect them all, retry as one
                    # batch on a fresh executor.
                    crashed = True
                    pending.appendleft(index)
                    break
                self._note_completion(pid, elapsed)
                if span_payload is not None:
                    parent_tracer.merge_payload(
                        span_payload,
                        parent_id=merge_parent_id,
                        worker_pid=pid,
                    )
                results[index] = value
            if crashed:
                # pending[0] is the future that surfaced the crash (pushed
                # back above); every other in-flight future is poisoned too.
                survivors = list(inflight.values())
                affected = [pending[0]] + survivors
                inflight.clear()
                pending.extend(survivors)
                self._note_crash(affected, attempt=max(
                    attempts[i] for i in affected) + 1)
                exhausted = []
                for index in affected:
                    attempts[index] += 1
                    if attempts[index] > self.max_retries:
                        exhausted.append(index)
                if exhausted:
                    raise WorkerCrashError(
                        f"worker crashed and {len(exhausted)} item(s) "
                        f"exhausted {self.max_retries} retries",
                        shard_indices=tuple(sorted(exhausted)),
                    )
                executor = self._respawn()
        return results
