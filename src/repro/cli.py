"""``repro-exp`` — command-line driver for the paper's experiments.

Examples::

    repro-exp fig1 --smoke                      # quick look at Figure 1
    repro-exp fig3 --tasks 90 --reps 25         # paper-scale Figure 3
    repro-exp table3a --repeats 5
    repro-exp table2
    repro-exp fig2 --csv out.csv                # raw records to CSV
    repro-exp ledger sweep --db runs.db --smoke # archive a sweep
    repro-exp ledger regress --db runs.db --baseline BENCH_PR3.json
    repro-exp faults --rates 0 0.1 --ledger faults.db  # resilience sweep
    repro-exp ledger prune --db runs.db --max-rows 10000
    repro-exp serve --tenants tenants.json      # multi-tenant admission
    repro-exp ledger estimate-error --db runs.db
    repro-exp trace --workers 4                 # trace with worker spans
    repro-exp worker --listen 0.0.0.0:9000      # join a cluster as a node
    repro-exp ledger sweep --workers host:9000,host:9001  # cluster sweep
    repro-exp slo --db runs.db                  # offline SLO burn rates
    repro-exp profile --reps 25 --out prof.txt  # sampling profiler
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.config import ExperimentConfig
from .experiments.figures import (
    FIGURE_ALGORITHMS,
    figure1,
    figure2,
    figure3,
    figure4,
)
from .experiments.report import (
    records_to_csv,
    render_cpu_table,
    render_figure,
)
from .experiments.tables import table2_rows, table3a, table3b

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig1": (figure1, ("makespan", "cost", "n_vms")),
    "fig2": (figure2, ("makespan", "cost", "n_vms")),
    "fig3": (figure3, ("makespan", "valid", "cost")),
    "fig4": (figure4, ("makespan",)),
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-exp`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the figures and tables of Caniou et al., "
        "IPDPSW 2018 (budget-aware workflow scheduling).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _FIGURES:
        p = sub.add_parser(name, help=f"regenerate paper {name}")
        p.add_argument("--smoke", action="store_true",
                       help="down-scaled run (seconds instead of minutes)")
        p.add_argument("--tasks", type=int, default=None,
                       help="workflow size (paper: 90)")
        p.add_argument("--instances", type=int, default=None,
                       help="instances per family (paper: 5)")
        p.add_argument("--reps", type=int, default=None,
                       help="stochastic repetitions per point (paper: 25)")
        p.add_argument("--budgets", type=int, default=None,
                       help="budget grid points per workflow")
        p.add_argument("--sigma", type=float, default=None,
                       help="sigma/mean ratio (paper: 0.25..1.0)")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--csv", type=str, default=None,
                       help="also dump raw run records to this CSV file")
        p.add_argument("--ledger", type=str, default=None,
                       help="archive every sweep point into this SQLite "
                       "run ledger")

    t2 = sub.add_parser("table2", help="print the platform constants")

    sigma = sub.add_parser(
        "sigma", help="sigma-impact study (§V-B / extended version)"
    )
    sigma.add_argument("--tasks", type=int, default=90)
    sigma.add_argument("--reps", type=int, default=25)
    sigma.add_argument("--position", type=float, default=0.4,
                       help="budget position on [B_min, B_high] (0..1)")

    frontier = sub.add_parser(
        "frontier", help="minimal budget to match the baseline makespan"
    )
    frontier.add_argument("--sizes", type=int, nargs="+", default=[30, 60, 90])

    for name in ("table3a", "table3b"):
        p = sub.add_parser(name, help=f"regenerate paper {name}")
        p.add_argument("--repeats", type=int, default=3,
                       help="scheduling timing repetitions")
        p.add_argument("--tasks", type=int, default=90,
                       help="workflow size for table3a")
        p.add_argument("--refined", action="store_true",
                       help="include the (slow) refined variants")

    srv = sub.add_parser(
        "serve", help="run the scheduling service HTTP gateway"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080)
    srv.add_argument("--workers", type=int, default=4,
                     help="worker threads for async jobs")
    srv.add_argument("--cache-size", type=int, default=256,
                     help="response cache capacity (0 disables)")
    srv.add_argument("--cache-ttl", type=float, default=None,
                     help="response cache TTL in seconds (default: forever)")
    srv.add_argument("--ledger", type=str, default=None,
                     help="archive every fresh schedule into this SQLite "
                     "run ledger (served at /v1/runs)")
    srv.add_argument("--max-queue-depth", type=int, default=None,
                     help="pending-job backlog bound; beyond it POST "
                     "/v1/jobs returns 429 (default: unbounded)")
    srv.add_argument("--job-timeout", type=float, default=None,
                     help="per-job wall-clock timeout in seconds")
    srv.add_argument("--max-retries", type=int, default=0,
                     help="transient-failure retries per async job "
                     "(exponential backoff with jitter)")
    srv.add_argument("--executor", choices=("thread", "process", "cluster"),
                     default="thread",
                     help="compute in worker threads (default), worker "
                     "processes (CPU-bound jobs off the GIL; see "
                     "docs/PARALLEL.md), or remote repro-exp worker nodes "
                     "(--nodes; see docs/CLUSTER.md)")
    srv.add_argument("--nodes", type=str, default=None,
                     help="cluster node list 'host:port,host:port' "
                     "(required with --executor cluster)")
    srv.add_argument("--tenants", type=str, default=None,
                     help="JSON file of per-tenant admission policies "
                     "(rate, concurrency, cost budget per window; see "
                     "docs/ADMISSION.md). Without it every request runs "
                     "under the permissive default tenant")
    _add_logging_flags(srv)

    wrk = sub.add_parser(
        "worker",
        help="run a long-lived cluster worker node (see docs/CLUSTER.md)",
    )
    wrk.add_argument("--listen", type=str, default="127.0.0.1:0",
                     help="host:port to listen on (port 0 picks a free "
                     "port, printed on startup)")
    wrk.add_argument("--slots", type=int, default=1,
                     help="advertised parallelism (shards executed "
                     "concurrently; scale out with more worker processes, "
                     "not more slots)")
    wrk.add_argument("--heartbeat", type=float, default=1.0,
                     help="seconds between heartbeat frames")
    wrk.add_argument("--token", type=str, default=None,
                     help="shared handshake token (coordinators must match)")

    sch = sub.add_parser(
        "schedule", help="one-shot scheduling request, JSON response on stdout"
    )
    sch.add_argument("--request", type=str, default=None,
                     help="path to a JSON request file ('-' for stdin); "
                     "overrides the flags below")
    sch.add_argument("--family", default="montage",
                     help="workflow generator family")
    sch.add_argument("--tasks", type=int, default=90)
    sch.add_argument("--seed", type=int, default=1,
                     help="workflow generator seed")
    sch.add_argument("--sigma", type=float, default=0.5,
                     help="sigma/mean ratio")
    sch.add_argument("--algorithm", default="heft_budg")
    group = sch.add_mutually_exclusive_group()
    group.add_argument("--budget", type=float, default=None,
                       help="absolute budget in dollars")
    group.add_argument("--position", type=float, default=0.5,
                       help="budget position on [B_min, B_high] (0..1)")
    sch.add_argument("--reps", type=int, default=0,
                     help="stochastic evaluation repetitions")
    sch.add_argument("--no-schedule-payload", action="store_true",
                     help="omit the full schedule dict from the output")
    _add_logging_flags(sch)

    trc = sub.add_parser(
        "trace",
        help="run one schedule+simulate with tracing enabled and export a "
        "Perfetto-loadable .trace.json plus a JSONL decision log",
    )
    trc.add_argument("--workflow", default="montage",
                     help="workflow generator family")
    trc.add_argument("--n", type=int, default=50, help="workflow size")
    trc.add_argument("--algo", default="heft_budg",
                     help="scheduling algorithm (see /v1/schedulers)")
    trc.add_argument("--seed", type=int, default=1,
                     help="workflow generator seed")
    trc.add_argument("--sigma", type=float, default=0.5,
                     help="sigma/mean ratio")
    tgroup = trc.add_mutually_exclusive_group()
    tgroup.add_argument("--budget", type=float, default=None,
                        help="absolute budget in dollars")
    tgroup.add_argument("--position", type=float, default=0.5,
                        help="budget position on [B_min, B_high] (0..1)")
    trc.add_argument("--out", default="run.trace.json",
                     help="Chrome trace-event JSON output path "
                     "(open in ui.perfetto.dev)")
    trc.add_argument("--decisions", default=None,
                     help="decision-log JSONL path "
                     "(default: <out stem>.decisions.jsonl)")
    trc.add_argument("--gantt", action="store_true",
                     help="also print the ASCII Gantt of the simulated run")
    trc.add_argument("--workers", type=int, default=0,
                     help="also run the Monte Carlo replications sharded "
                     "across this many worker processes; their spans merge "
                     "back into the trace under the session's trace id "
                     "(0 = no parallel phase)")
    trc.add_argument("--reps", type=int, default=16,
                     help="Monte Carlo replications for the parallel phase "
                     "(only with --workers > 0)")

    slo = sub.add_parser(
        "slo",
        help="SLO report: per-stage streaming percentiles and multi-window "
        "burn rates, from a live service (--url) or a run ledger (--db)",
    )
    source = slo.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", default=None,
                        help="base URL of a running service "
                        "(e.g. http://127.0.0.1:8080); reads GET /v1/slo")
    source.add_argument("--db", default=None,
                        help="ledger SQLite file; computes the report "
                        "offline from archived service rows")
    slo.add_argument("--limit", type=int, default=0,
                     help="with --db: scan only the newest N rows "
                     "(default: all)")
    slo.add_argument("--json", action="store_true",
                     help="emit the raw report as JSON instead of tables")

    prof = sub.add_parser(
        "profile",
        help="sampling profiler over one schedule+simulate run; prints the "
        "top frames and can write collapsed stacks for flamegraphs",
    )
    prof.add_argument("--workflow", default="montage",
                      help="workflow generator family")
    prof.add_argument("--n", type=int, default=90, help="workflow size")
    prof.add_argument("--algo", default="heft_budg",
                      help="scheduling algorithm (see /v1/schedulers)")
    prof.add_argument("--seed", type=int, default=1,
                      help="workflow generator seed")
    prof.add_argument("--sigma", type=float, default=0.5,
                      help="sigma/mean ratio")
    pgroup = prof.add_mutually_exclusive_group()
    pgroup.add_argument("--budget", type=float, default=None,
                        help="absolute budget in dollars")
    pgroup.add_argument("--position", type=float, default=0.5,
                        help="budget position on [B_min, B_high] (0..1)")
    prof.add_argument("--reps", type=int, default=25,
                      help="Monte Carlo replications to profile")
    prof.add_argument("--interval", type=float, default=0.005,
                      help="sampling period in seconds (default 5 ms)")
    prof.add_argument("--top", type=int, default=15,
                      help="rows in the top-frames table")
    prof.add_argument("--out", default=None,
                      help="write collapsed stacks (flamegraph.pl / "
                      "speedscope input) to this path")

    flt = sub.add_parser(
        "faults",
        help="resilience sweep: crash rates x recovery policies, success "
        "and budget-safety per cell",
    )
    flt.add_argument("--families", nargs="+", default=["montage"],
                     help="workflow generator families")
    flt.add_argument("--tasks", type=int, default=30, help="workflow size")
    flt.add_argument("--algorithms", nargs="+", default=["heft_budg"])
    flt.add_argument("--policies", nargs="+", default=["none", "remap"],
                     help="recovery policies ('none' measures the damage)")
    flt.add_argument("--rates", type=float, nargs="+", default=[0.0, 0.1],
                     help="VM crash rates per VM-hour")
    flt.add_argument("--runs", type=int, default=5,
                     help="fault-plan draws per cell")
    flt.add_argument("--seed", type=int, default=1)
    flt.add_argument("--position", type=float, default=0.5,
                     help="budget position on [B_min, B_high] (0..1)")
    flt.add_argument("--sigma", type=float, default=0.5,
                     help="sigma/mean ratio")
    flt.add_argument("--max-attempts", type=int, default=5,
                     help="executions per run (recoveries + 1)")
    flt.add_argument("--spot", action="store_true",
                     help="spot-market sweep: plan spot-first on discounted "
                     "preemptible capacity, inject correlated revocation "
                     "bursts (--rates become bursts/hour), recover via "
                     "checkpoints and on-demand fallback")
    flt.add_argument("--reserves", type=float, nargs="+", default=[0.0],
                     help="[--spot] contingency-reserve budget fractions "
                     "withheld from planning (0..1)")
    flt.add_argument("--discount", type=float, default=0.6,
                     help="[--spot] spot price discount off on-demand (0..1)")
    flt.add_argument("--warning", type=float, default=120.0,
                     help="[--spot] revocation warning lead time, seconds")
    flt.add_argument("--checkpoint-interval", type=float, default=None,
                     help="[--spot] checkpoint every N seconds of useful "
                     "work (omit to disable checkpointing)")
    flt.add_argument("--checkpoint-overhead", type=float, default=30.0,
                     help="[--spot] seconds billed per checkpoint flush")
    flt.add_argument("--max-replans", type=int, default=None,
                     help="cap accepted recoveries per run (default: "
                     "unlimited up to --max-attempts)")
    flt.add_argument("--ledger", type=str, default=None,
                     help="archive every run into this SQLite run ledger "
                     "(source='faults')")
    flt.add_argument("--workers", type=str, default="0",
                     help="worker processes for the sweep cells, or a "
                     "'host:port,host:port' cluster node list (0 = serial; "
                     "results are bit-identical either way)")

    led = sub.add_parser(
        "ledger",
        help="query the persistent run ledger and gate regressions",
    )
    lsub = led.add_subparsers(dest="ledger_command", required=True)

    def _db_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", default="runs.db",
                       help="ledger SQLite file (default: runs.db)")

    l_sweep = lsub.add_parser(
        "sweep", help="run an experiment sweep, archiving every point"
    )
    _db_flag(l_sweep)
    l_sweep.add_argument("--smoke", action="store_true",
                         help="down-scaled run (seconds instead of minutes)")
    l_sweep.add_argument("--tasks", type=int, default=None)
    l_sweep.add_argument("--instances", type=int, default=None)
    l_sweep.add_argument("--reps", type=int, default=None)
    l_sweep.add_argument("--budgets", type=int, default=None)
    l_sweep.add_argument("--sigma", type=float, default=None)
    l_sweep.add_argument("--seed", type=int, default=None)
    l_sweep.add_argument("--families", nargs="+", default=None,
                         help="workflow families (default: config's)")
    l_sweep.add_argument("--algorithms", nargs="+", default=None,
                         help="algorithms (default: config's)")
    l_sweep.add_argument("--workers", type=str, default="0",
                         help="worker processes for the sweep points, or a "
                         "'host:port,host:port' cluster node list (0 = "
                         "serial; results are bit-identical either way)")

    l_list = lsub.add_parser("list", help="newest archived runs")
    _db_flag(l_list)
    l_list.add_argument("--algorithm", default=None)
    l_list.add_argument("--workflow", default=None,
                        help="workflow name or family")
    l_list.add_argument("--source", default=None,
                        help="run source (service | sweep)")
    l_list.add_argument("--limit", type=int, default=20,
                        help="max rows (0 = all)")
    l_list.add_argument("--csv", type=str, default=None,
                        help="write the rows as CSV instead of a table")

    l_show = lsub.add_parser("show", help="one archived run, as JSON")
    _db_flag(l_show)
    l_show.add_argument("run_id", type=int)

    l_cmp = lsub.add_parser(
        "compare", help="per family/n_tasks/algorithm group means"
    )
    _db_flag(l_cmp)
    l_cmp.add_argument("--latest", type=int, default=0,
                       help="only each group's newest N runs (0 = all)")

    l_base = lsub.add_parser(
        "baseline",
        help="fold the ledger into a BENCH-style ledger_baseline JSON",
    )
    _db_flag(l_base)
    l_base.add_argument("--latest", type=int, default=0,
                        help="only each group's newest N runs (0 = all)")
    l_base.add_argument("--out", type=str, default=None,
                        help="write to this file instead of stdout")

    l_reg = lsub.add_parser(
        "regress",
        help="compare the ledger against a BENCH_*.json baseline; "
        "exit 1 on regression, 2 on no data",
    )
    _db_flag(l_reg)
    l_reg.add_argument("--baseline", required=True,
                       help="BENCH_*.json file with a ledger_baseline key")
    l_reg.add_argument("--threshold", type=float, default=0.10,
                       help="fractional makespan slowdown tolerated "
                       "(default: 0.10)")
    l_reg.add_argument("--cost-threshold", type=float, default=0.10,
                       help="fractional cost growth tolerated "
                       "(default: 0.10)")
    l_reg.add_argument("--success-threshold", type=float, default=0.05,
                       help="absolute success-rate drop tolerated "
                       "(default: 0.05)")
    l_reg.add_argument("--stat", action="store_true",
                       help="statistical gating: flag a makespan regression "
                       "only when a one-sided Welch test on the stored MC "
                       "sample stats finds a significant slowdown (groups "
                       "without stats fall back to --threshold)")
    l_reg.add_argument("--confidence", type=float, default=0.95,
                       help="confidence level for --stat (default: 0.95)")
    l_reg.add_argument("--rps-threshold", type=float, default=0.15,
                       help="fractional achieved-rate drop tolerated for "
                       "load_baseline groups (default: 0.15)")
    l_reg.add_argument("--p99-threshold", type=float, default=0.25,
                       help="fractional p99 latency growth tolerated for "
                       "load_baseline groups (default: 0.25)")

    l_prune = lsub.add_parser(
        "prune", help="delete old ledger rows to keep the database bounded"
    )
    _db_flag(l_prune)
    l_prune.add_argument("--max-rows", type=int, default=None,
                         help="keep only the newest N rows")
    l_prune.add_argument("--max-age-days", type=float, default=None,
                         help="drop rows older than this many days")

    l_est = lsub.add_parser(
        "estimate-error",
        help="summarize pre-admission estimate accuracy per algorithm "
        "(needs rows recorded by an admission-enabled service)",
    )
    _db_flag(l_est)
    l_est.add_argument("--limit", type=int, default=0,
                       help="scan only the newest N rows (default: all)")
    l_est.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of a table")

    ld = sub.add_parser(
        "load",
        help="seeded open-loop load generation (the load observatory)",
    )
    ldsub = ld.add_subparsers(dest="load_command", required=True)

    def _arrival_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--process", default="poisson",
                       choices=("poisson", "mmpp", "trace"),
                       help="arrival process (default: poisson)")
        p.add_argument("--rate", type=float, default=50.0,
                       help="long-run offered rate, requests/s (default: 50)")
        p.add_argument("--requests", type=int, default=1000,
                       help="total planned requests (default: 1000)")
        p.add_argument("--seed", type=int, default=0,
                       help="sequence seed — same seed, same sequence")
        p.add_argument("--burstiness", type=float, default=4.0,
                       help="mmpp burst:calm rate ratio (default: 4)")
        p.add_argument("--mean-burst-s", type=float, default=2.0,
                       help="mmpp mean burst dwell (default: 2s)")
        p.add_argument("--mean-calm-s", type=float, default=8.0,
                       help="mmpp mean calm dwell (default: 8s)")
        p.add_argument("--batch-tail-alpha", type=float, default=0.0,
                       help="Pareto tail for batched arrivals "
                       "(0 disables; smaller = heavier tail)")
        p.add_argument("--trace-file", default=None,
                       help="arrival offsets file for --process trace")
        p.add_argument("--families", nargs="+", default=["montage", "ligo"],
                       help="workflow families in the spec pool")
        p.add_argument("--n-tasks", nargs="+", type=int, default=[15],
                       help="workflow sizes in the spec pool")
        p.add_argument("--algorithms", nargs="+", default=["heft_budg"],
                       help="algorithms in the spec pool")
        p.add_argument("--budgets", nargs="+", type=float, default=[2.0],
                       help="budget positions in the spec pool")
        p.add_argument("--spec-seeds", type=int, default=3,
                       help="workflow RNG seeds per pool entry (default: 3)")
        p.add_argument("--reps", type=int, default=2,
                       help="Monte-Carlo reps per request (default: 2)")
        p.add_argument("--tenants", default=None,
                       help="weighted tenant mix, 'name=w,name=w' "
                       "(default: one 'default' tenant)")
        p.add_argument("--priorities", default=None,
                       help="weighted priority mix, 'name=w,name=w'")

    l_run = ldsub.add_parser(
        "run", help="replay a seeded workload and archive the load_run"
    )
    _arrival_flags(l_run)
    l_run.add_argument("--target", default=None,
                       help="gateway base URL (default: in-process engine)")
    l_run.add_argument("--label", default=None,
                       help="ledger group label for this run")
    l_run.add_argument("--concurrency", type=int, default=8,
                       help="dispatch threads (default: 8)")
    l_run.add_argument("--no-pace", action="store_true",
                       help="ignore planned offsets; fire as fast as "
                       "the pool drains (throughput probe)")
    l_run.add_argument("--db", default=None,
                       help="archive the run into this ledger SQLite file")
    l_run.add_argument("--json", action="store_true",
                       help="print the full result as JSON")
    l_run.add_argument("--out", default=None,
                       help="also write the JSON result to this file")

    l_seq = ldsub.add_parser(
        "sequence",
        help="plan the request sequence and print its fingerprint "
        "(no requests are sent)",
    )
    _arrival_flags(l_seq)
    l_seq.add_argument("--show", type=int, default=10,
                       help="print the first N planned arrivals "
                       "(default: 10; 0 = none)")
    l_seq.add_argument("--json", action="store_true",
                       help="dump every planned arrival as JSON lines")

    l_rep = ldsub.add_parser(
        "report",
        help="render archived load runs as a standalone HTML report",
    )
    l_rep.add_argument("--db", default="runs.db",
                       help="ledger SQLite file (default: runs.db)")
    l_rep.add_argument("--label", action="append", default=None,
                       help="only runs with this label (repeatable)")
    l_rep.add_argument("--limit", type=int, default=50,
                       help="newest N runs per query (default: 50)")
    l_rep.add_argument("--out", default="load_report.html",
                       help="output file (default: load_report.html)")
    l_rep.add_argument("--title", default="Load observatory report")

    dash = sub.add_parser(
        "dash",
        help="live terminal dashboard over a running gateway",
    )
    dash.add_argument("--url", default="http://127.0.0.1:8080",
                      help="gateway base URL (default: http://127.0.0.1:8080)")
    dash.add_argument("--interval", type=float, default=1.0,
                      help="refresh interval seconds (default: 1.0)")
    dash.add_argument("--iterations", type=int, default=None,
                      help="draw N frames then exit (default: until 'q')")
    dash.add_argument("--no-ansi", action="store_true",
                      help="plain frames without colour or screen clears "
                      "(CI logs)")
    dash.add_argument("--no-events", action="store_true",
                      help="skip the SSE event ticker subscription")
    return parser


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error",
                                 "critical"),
                        help="structured logging threshold")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines instead of key=value")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    cfg = ExperimentConfig.smoke() if args.smoke else ExperimentConfig.paper_scale()
    overrides = {}
    if args.tasks is not None:
        overrides["n_tasks"] = args.tasks
    if args.instances is not None:
        overrides["n_instances"] = args.instances
    if args.reps is not None:
        overrides["n_reps"] = args.reps
    if args.budgets is not None:
        overrides["budgets_per_workflow"] = args.budgets
    if args.sigma is not None:
        overrides["sigma_ratio"] = args.sigma
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        from dataclasses import replace

        cfg = replace(cfg, **overrides)
    return cfg


def _run_schedule(args: argparse.Namespace) -> int:
    """The ``schedule`` subcommand: one request in, one JSON response out."""
    import json

    from .errors import ServiceError
    from .service import SchedulingService

    if args.request is not None:
        try:
            if args.request == "-":
                payload = json.load(sys.stdin)
            else:
                with open(args.request) as fh:
                    payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read request: {exc}", file=sys.stderr)
            return 2
    else:
        payload = {
            "workflow": {
                "family": args.family, "n_tasks": args.tasks,
                "rng": args.seed, "sigma_ratio": args.sigma,
            },
            "algorithm": args.algorithm,
            "budget": (
                {"amount": args.budget} if args.budget is not None
                else {"position": args.position}
            ),
            "evaluation": {"n_reps": args.reps},
        }

    with SchedulingService(max_workers=1, cache_size=0) as svc:
        try:
            response = svc.schedule(payload)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    out = response.to_dict()
    if args.no_schedule_payload:
        out.pop("schedule")
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: one traced schedule+simulate, two files."""
    from .errors import ReproError
    from .obs import Tracer, use_tracer
    from .obs.export import write_chrome_trace, write_decision_log
    from .platform.cloud import PAPER_PLATFORM
    from .scheduling.registry import make_scheduler
    from .service.spec import BudgetSpec
    from .simulation.executor import evaluate_schedule
    from .workflow.generators import generate

    try:
        wf = generate(args.workflow, args.n, rng=args.seed,
                      sigma_ratio=args.sigma)
        budget_spec = (
            BudgetSpec(amount=args.budget) if args.budget is not None
            else BudgetSpec(position=args.position)
        )
        budget = budget_spec.resolve(wf, PAPER_PLATFORM)
        tracer = Tracer()
        n_worker_spans = 0
        with use_tracer(tracer):
            with tracer.span("trace.session", workflow=args.workflow,
                             n_tasks=args.n, algorithm=args.algo,
                             budget=budget):
                result = make_scheduler(args.algo).schedule(
                    wf, PAPER_PLATFORM, budget
                )
                run = evaluate_schedule(wf, PAPER_PLATFORM, result.schedule)
                if args.workers > 0 and args.reps > 0:
                    n_worker_spans = _traced_replications(
                        tracer, wf, result.schedule, budget,
                        n_reps=args.reps, workers=args.workers,
                    )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stem = args.out
    for suffix in (".trace.json", ".json"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    decisions_path = args.decisions or f"{stem}.decisions.jsonl"
    doc = write_chrome_trace(
        args.out, tracer, run,
        metadata={
            "workflow": args.workflow, "n_tasks": args.n,
            "algorithm": args.algo, "budget": budget,
            "makespan": run.makespan, "total_cost": run.total_cost,
        },
    )
    n_decisions = write_decision_log(decisions_path, tracer.decisions)

    if args.gantt:
        from .simulation.gantt import render_gantt

        print(render_gantt(run))
    print(f"algorithm       : {args.algo}")
    print(f"budget          : ${budget:.4f}")
    print(f"makespan        : {run.makespan:.1f}s on {run.n_vms} VMs "
          f"(cost ${run.total_cost:.4f})")
    print(f"trace id        : {tracer.trace_id}")
    if args.workers > 0:
        print(f"worker spans    : {n_worker_spans} merged from "
              f"{args.workers} worker process(es) ({args.reps} reps)")
    print(f"trace           : {args.out} "
          f"({len(doc['traceEvents'])} events; open in ui.perfetto.dev)")
    print(f"decision log    : {decisions_path} ({n_decisions} records)")
    return 0


def _traced_replications(tracer, wf, schedule, budget, *, n_reps: int,
                         workers: int) -> int:
    """Run the Monte Carlo replications on a worker pool under the trace.

    Shards exactly like :func:`repro.experiments.runner` does; each worker
    runs a worker-local tracer carrying the parent's trace id, and
    :meth:`repro.parallel.WorkerPool.map` merges the per-shard spans back
    into ``tracer``. Returns how many spans the merge added.
    """
    from .parallel import ShardPlan, WorkerPool
    from .platform.cloud import PAPER_PLATFORM
    from .rng import as_generator, spawn_seeds
    from .simulation.executor import run_replications

    seeds = spawn_seeds(as_generator(0), n_reps)
    plan = ShardPlan.plan(n_reps, workers)
    shard_tasks = [{
        "wf": wf,
        "platform": PAPER_PLATFORM,
        "schedule": schedule,
        "budget": budget,
        "seeds": list(shard.slice(seeds)),
        "validate_first": shard.start == 0,
    } for shard in plan.shards]
    before = len(tracer.spans)
    with tracer.span("trace.replications", n_reps=n_reps,
                     n_shards=len(plan.shards), workers=workers):
        if plan.is_serial:
            for task in shard_tasks:
                run_replications(task)
        else:
            with WorkerPool(workers) as pool:
                pool.map(run_replications, shard_tasks)
    return len(tracer.spans) - before - 1  # minus our own wrapper span


def _render_slo_report(report: dict) -> str:
    """Human tables for an SLO report (live snapshot or offline)."""
    lines: List[str] = []
    observed = report.get("observed", 0)
    failures = report.get("failures", 0)
    lines.append(f"requests observed : {observed} ({failures} failed)")
    stages = report.get("stages", {})
    if stages:
        lines.append("")
        lines.append(f"{'stage':<12s} {'count':>7s} {'p50':>10s} "
                     f"{'p95':>10s} {'p99':>10s}")
        for name, pcts in stages.items():
            lines.append(
                f"{name:<12.12s} {int(pcts.get('count', 0)):>7d} "
                f"{pcts.get('p50', 0.0):>10.4f} "
                f"{pcts.get('p95', 0.0):>10.4f} "
                f"{pcts.get('p99', 0.0):>10.4f}"
            )
    targets = report.get("targets", [])
    if targets:
        labels = list(targets[0].get("windows", {}))
        lines.append("")
        header = f"{'objective':<16s} {'target':>8s}"
        for label in labels:
            header += f" {'burn ' + label:>10s}"
        lines.append(header)
        for target in targets:
            row = f"{target['name']:<16.16s} {target['target']:>8.3f}"
            for label in labels:
                burn = target["windows"].get(label, {}).get("burn_rate", 0.0)
                row += f" {burn:>10.2f}"
            exhausted = [
                label for label in labels
                if target["windows"].get(label, {}).get("budget_exhausted")
            ]
            if exhausted:
                row += f"  ! budget exhausted ({', '.join(exhausted)})"
            lines.append(row)
    if not stages and not targets:
        lines.append("no data")
    return "\n".join(lines)


def _run_slo(args: argparse.Namespace) -> int:
    """The ``slo`` subcommand: burn rates + stage percentiles."""
    import json

    if args.url is not None:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/v1/slo"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                report = json.load(resp)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
            return 2
    else:
        from .obs.ledger import RunLedger
        from .obs.slo import report_from_rows

        with RunLedger(args.db) as ledger:
            rows = ledger.runs(source="service", limit=args.limit)
        report = report_from_rows(rows)
        if not rows:
            print(f"error: no service rows in {args.db}", file=sys.stderr)
            return 2

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(_render_slo_report(report))
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: sample one schedule+simulate run."""
    from .errors import ReproError
    from .obs.profiler import SamplingProfiler
    from .platform.cloud import PAPER_PLATFORM
    from .rng import as_generator, spawn_seeds
    from .scheduling.registry import make_scheduler
    from .service.spec import BudgetSpec
    from .simulation.executor import run_replications
    from .workflow.generators import generate

    try:
        wf = generate(args.workflow, args.n, rng=args.seed,
                      sigma_ratio=args.sigma)
        budget_spec = (
            BudgetSpec(amount=args.budget) if args.budget is not None
            else BudgetSpec(position=args.position)
        )
        budget = budget_spec.resolve(wf, PAPER_PLATFORM)
        profiler = SamplingProfiler(interval_s=args.interval)
        with profiler:
            result = make_scheduler(args.algo).schedule(
                wf, PAPER_PLATFORM, budget
            )
            if args.reps > 0:
                seeds = spawn_seeds(as_generator(args.seed), args.reps)
                run_replications({
                    "wf": wf, "platform": PAPER_PLATFORM,
                    "schedule": result.schedule, "budget": budget,
                    "seeds": seeds,
                })
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    summary = profiler.to_dict()
    print(f"profiled        : {args.algo} on {args.workflow} "
          f"(n={args.n}, reps={args.reps})")
    print(f"samples         : {summary['n_samples']} stacks over "
          f"{summary['duration_s']:.2f}s "
          f"(interval {args.interval * 1e3:.1f} ms)")
    top = profiler.top(args.top)
    if top:
        print(f"\n{'self%':>6s} {'cum%':>6s} {'self':>6s} {'cum':>6s}  frame")
        for row in top:
            print(f"{row['self_pct']:>6.1f} {row['cumulative_pct']:>6.1f} "
                  f"{row['self']:>6d} {row['cumulative']:>6d}  "
                  f"{row['frame']}")
    else:
        print("no samples collected (run too short for the interval; "
              "raise --reps or lower --interval)")
    if args.out:
        n_lines = profiler.write_collapsed(args.out)
        print(f"\ncollapsed stacks: {args.out} ({n_lines} lines; feed to "
              f"flamegraph.pl or speedscope)")
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """The ``worker`` subcommand: serve shards until terminated.

    Prints a parseable ``worker listening on host:port`` line (flushed,
    so wrappers reading stdout see the bound port immediately — needed
    when ``--listen`` ends in ``:0``), then blocks. SIGTERM and SIGINT
    both shut the node down; the coordinator sees the connection drop
    and reassigns any in-flight shards.
    """
    import os
    import signal

    from .cluster.protocol import parse_address
    from .cluster.worker import ClusterWorker
    from .errors import ClusterProtocolError

    try:
        host, port = parse_address(args.listen)
    except ClusterProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker = ClusterWorker(
        host, port, slots=args.slots, heartbeat_s=args.heartbeat,
        token=args.token,
    )
    bound_host, bound_port = worker.start()
    print(
        f"worker listening on {bound_host}:{bound_port} "
        f"(pid {os.getpid()}, slots {args.slots})",
        flush=True,
    )

    def _shutdown(signum: int, frame: object) -> None:
        # First signal starts the drain; later ones (an impatient
        # supervisor re-sending SIGTERM) must not interrupt close().
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
        print("worker stopped", flush=True)
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """The ``faults`` subcommand: run and render a resilience sweep.

    ``--spot`` switches to the spot-market variant: ``--rates`` become
    correlated revocation bursts per hour, plans go spot-first, and the
    ``--reserves`` axis maps the contingency-reserve frontier.
    """
    from .experiments.resilience import (
        render_resilience,
        resilience_sweep,
        spot_resilience_sweep,
    )

    kwargs = dict(
        families=tuple(args.families),
        n_tasks=args.tasks,
        algorithms=tuple(args.algorithms),
        policies=tuple(args.policies),
        n_runs=args.runs,
        budget_position=args.position,
        sigma_ratio=args.sigma,
        seed=args.seed,
        max_attempts=args.max_attempts,
        max_replans=args.max_replans,
        workers=args.workers,
    )
    if args.spot:
        from .faults.spot import CheckpointConfig
        from .platform.pricing import SpotMarket

        checkpoint = None
        if args.checkpoint_interval is not None:
            checkpoint = CheckpointConfig(
                interval_s=args.checkpoint_interval,
                overhead_s=args.checkpoint_overhead,
            )
        sweep = spot_resilience_sweep
        kwargs.update(
            preemption_rates=tuple(args.rates),
            reserves=tuple(args.reserves),
            warning_s=args.warning,
            checkpoint=checkpoint,
            market=SpotMarket.sample(rng=args.seed, discount=args.discount),
        )
    else:
        sweep = resilience_sweep
        kwargs["crash_rates"] = tuple(args.rates)
    if args.ledger:
        from .obs.ledger import RunLedger, use_ledger

        with RunLedger(args.ledger) as ledger:
            with use_ledger(ledger):
                study = sweep(**kwargs)
            print(render_resilience(study))
            print(f"archived {ledger.count()} run(s) to {args.ledger}")
    else:
        study = sweep(**kwargs)
        print(render_resilience(study))
    over = sum(p.n_over_budget for p in study.points)
    return 1 if over else 0


def _run_ledger(args: argparse.Namespace) -> int:
    """The ``ledger`` subcommand group: archive, query, gate."""
    import json

    from .obs.ledger import (
        RunLedger,
        baseline_from_ledger,
        compare_load_to_baseline,
        compare_to_baseline,
        extract_baseline,
        extract_load_baseline,
        load_baseline_from_ledger,
        use_ledger,
    )

    cmd = args.ledger_command
    if cmd == "sweep":
        from dataclasses import replace

        from .experiments.runner import run_sweep

        cfg = _config_from_args(args)
        overrides = {}
        if args.families:
            overrides["families"] = tuple(args.families)
        if args.algorithms:
            overrides["algorithms"] = tuple(args.algorithms)
        if overrides:
            cfg = replace(cfg, **overrides)
        with RunLedger(args.db) as ledger:
            with use_ledger(ledger):
                records = run_sweep(cfg, workers=args.workers)
            n_runs = ledger.count()
        print(f"archived {n_runs} run(s) ({len(records)} repetition records) "
              f"to {args.db}")
        return 0

    with RunLedger(args.db) as ledger:
        if cmd == "list":
            rows = ledger.runs(
                algorithm=args.algorithm, workflow=args.workflow,
                source=args.source, limit=args.limit,
            )
            if args.csv:
                from .io import runs_to_csv

                with open(args.csv, "w", newline="") as fh:
                    runs_to_csv(rows, fh)
                print(f"{len(rows)} run(s) written to {args.csv}")
                return 0
            print(f"{'id':>5s} {'source':<8s} {'algorithm':<16s} "
                  f"{'workflow':<24s} {'budget':>9s} {'makespan':>9s} "
                  f"{'cost':>9s} {'succ':>5s}")
            for r in rows:
                mk = f"{r.sim_makespan:.1f}" if r.sim_makespan is not None else "—"
                cost = f"{r.sim_cost:.4f}" if r.sim_cost is not None else "—"
                succ = (f"{r.success_rate:.2f}"
                        if r.success_rate is not None else "—")
                print(f"{r.run_id:>5d} {r.source:<8s} {r.algorithm:<16s} "
                      f"{(r.workflow or r.family):<24.24s} {r.budget:>9.4f} "
                      f"{mk:>9s} {cost:>9s} {succ:>5s}")
            print(f"{len(rows)} of {ledger.count()} run(s) in {args.db}")
            return 0

        if cmd == "show":
            try:
                row = ledger.run(args.run_id)
            except KeyError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            json.dump(row.to_dict(), sys.stdout, indent=2, sort_keys=True)
            print()
            return 0

        if cmd == "compare":
            stats = ledger.group_stats(latest_per_group=args.latest)
            print(f"{'group':<40s} {'n':>4s} {'makespan':>10s} "
                  f"{'cost':>10s} {'success':>8s}")
            for group, s in stats.items():
                mk = f"{s['makespan']:.2f}" if "makespan" in s else "—"
                cost = f"{s['cost']:.4f}" if "cost" in s else "—"
                succ = (f"{s['success_rate']:.2f}"
                        if "success_rate" in s else "—")
                print(f"{group:<40s} {int(s['n_runs']):>4d} {mk:>10s} "
                      f"{cost:>10s} {succ:>8s}")
            print(f"{len(stats)} group(s)")
            return 0

        if cmd == "baseline":
            baseline = baseline_from_ledger(
                ledger, latest_per_group=args.latest
            )
            doc = {"ledger_baseline": baseline}
            load_baseline = load_baseline_from_ledger(
                ledger, latest_per_group=args.latest
            )
            if load_baseline:
                doc["load_baseline"] = load_baseline
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"{len(baseline)} run group(s) + {len(load_baseline)} "
                      f"load group(s) written to {args.out}")
            else:
                json.dump(doc, sys.stdout, indent=2, sort_keys=True)
                print()
            if not baseline and not load_baseline:
                print("error: no simulated or load runs in the ledger",
                      file=sys.stderr)
                return 2
            return 0

        if cmd == "prune":
            if args.max_rows is None and args.max_age_days is None:
                print("error: pass --max-rows and/or --max-age-days",
                      file=sys.stderr)
                return 2
            deleted = ledger.prune(
                max_rows=args.max_rows, max_age_days=args.max_age_days
            )
            print(f"pruned {deleted} run(s); {ledger.count()} left in "
                  f"{args.db}")
            return 0

        if cmd == "estimate-error":
            from .admission import estimate_error_report

            report = estimate_error_report(ledger, limit=args.limit)
            if args.json:
                json.dump(report, sys.stdout, indent=2, sort_keys=True)
                print()
            else:
                print(f"{'algorithm':<20s} {'n':>5s} {'cost MARE':>10s} "
                      f"{'worst':>8s} {'dur MARE':>9s} {'worst':>8s} sources")
                for algorithm, entry in report.items():
                    cm = (f"{entry['cost_mare']:.3f}"
                          if "cost_mare" in entry else "—")
                    cw = (f"{entry['cost_worst']:+.2f}"
                          if "cost_worst" in entry else "—")
                    dm = (f"{entry['duration_mare']:.3f}"
                          if "duration_mare" in entry else "—")
                    dw = (f"{entry['duration_worst']:+.2f}"
                          if "duration_worst" in entry else "—")
                    sources = ",".join(
                        f"{k}:{v}" for k, v in entry["sources"].items()
                    )
                    print(f"{algorithm:<20.20s} {entry['n']:>5d} {cm:>10s} "
                          f"{cw:>8s} {dm:>9s} {dw:>8s} {sources}")
                print(f"{len(report)} algorithm(s) with reconciled estimates "
                      f"in {args.db}")
            if not report:
                print("error: no admission-reconciled rows in the ledger",
                      file=sys.stderr)
                return 2
            return 0

        if cmd == "regress":
            try:
                with open(args.baseline) as fh:
                    document = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2
            # A BENCH document may carry a simulation baseline, a load
            # baseline, or both; gate every kind it has.
            baseline = load_baseline = None
            errors = []
            try:
                baseline = extract_baseline(document)
            except ValueError as exc:
                errors.append(str(exc))
            try:
                load_baseline = extract_load_baseline(document)
            except ValueError as exc:
                errors.append(str(exc))
            if baseline is None and load_baseline is None:
                print(f"error: cannot load baseline: {'; '.join(errors)}",
                      file=sys.stderr)
                return 2
            ok = True
            any_deltas = False
            if baseline is not None:
                report = compare_to_baseline(
                    ledger, baseline,
                    makespan_threshold=args.threshold,
                    cost_threshold=args.cost_threshold,
                    success_threshold=args.success_threshold,
                    stat=args.stat,
                    confidence=args.confidence,
                )
                print(report.render())
                ok = ok and report.ok
                any_deltas = any_deltas or bool(report.deltas)
            if load_baseline is not None:
                load_report = compare_load_to_baseline(
                    ledger, load_baseline,
                    rps_threshold=args.rps_threshold,
                    p99_threshold=args.p99_threshold,
                    stat=args.stat,
                    confidence=args.confidence,
                )
                print(load_report.render())
                ok = ok and load_report.ok
                any_deltas = any_deltas or bool(load_report.deltas)
            if not any_deltas:
                print("error: no baseline group found in the ledger",
                      file=sys.stderr)
                return 2
            return 0 if ok else 1

    return 1  # pragma: no cover - argparse guards subcommands


def _parse_mix(text: Optional[str], what: str) -> Optional[dict]:
    """``'name=w,name=w'`` → weighted-mix dict (None passes through)."""
    if text is None:
        return None
    mix = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, eq, weight = part.partition("=")
        if not eq:
            raise SystemExit(
                f"error: {what} entry {part!r} is not 'name=weight'"
            )
        try:
            mix[name.strip()] = float(weight)
        except ValueError:
            raise SystemExit(
                f"error: {what} weight in {part!r} is not a number"
            ) from None
    if not mix:
        raise SystemExit(f"error: {what} mix is empty")
    return mix


def _arrival_config_from_args(args: argparse.Namespace):
    """Build an :class:`ArrivalConfig` from the shared ``load`` flags."""
    from .loadgen import ArrivalConfig
    from .loadgen.arrivals import load_trace_offsets

    kwargs = dict(
        process=args.process,
        rate=args.rate,
        n_requests=args.requests,
        seed=args.seed,
        burstiness=args.burstiness,
        mean_burst_s=args.mean_burst_s,
        mean_calm_s=args.mean_calm_s,
        batch_tail_alpha=args.batch_tail_alpha,
        families=tuple(args.families),
        n_tasks=tuple(args.n_tasks),
        algorithms=tuple(args.algorithms),
        budgets=tuple(args.budgets),
        spec_seeds=args.spec_seeds,
        n_reps=args.reps,
    )
    if args.trace_file:
        kwargs["trace_offsets"] = load_trace_offsets(args.trace_file)
    tenants = _parse_mix(args.tenants, "tenants")
    if tenants:
        kwargs["tenants"] = tenants
    priorities = _parse_mix(args.priorities, "priorities")
    if priorities:
        kwargs["priorities"] = priorities
    return ArrivalConfig(**kwargs)


def _run_load(args: argparse.Namespace) -> int:
    """The ``load`` subcommand group: sequence, run, report."""
    import json

    from .errors import ServiceError

    cmd = args.load_command
    if cmd == "sequence":
        from .loadgen import generate_sequence, sequence_fingerprint

        try:
            config = _arrival_config_from_args(args)
            planned = generate_sequence(config)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            for p in planned:
                json.dump({"index": p.index, "offset_s": p.offset_s,
                           "fingerprint": p.fingerprint, "tenant": p.tenant,
                           "priority": p.priority}, sys.stdout,
                          sort_keys=True)
                print()
        print(f"config   {config.fingerprint()}")
        print(f"sequence {sequence_fingerprint(planned)}")
        print(f"{len(planned)} request(s) over "
              f"{planned[-1].offset_s if planned else 0.0:.2f}s "
              f"(offered {config.offered_rate:.1f} req/s)")
        for p in planned[:max(args.show, 0)]:
            print(f"  #{p.index:<5d} +{p.offset_s:8.3f}s "
                  f"{p.fingerprint[:12]} {p.tenant}/{p.priority}")
        return 0

    if cmd == "run":
        from .loadgen import LoadDriver

        try:
            config = _arrival_config_from_args(args)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        service = None
        target = args.target
        if target is None:
            from .service.engine import SchedulingService

            service = SchedulingService()
            target = service
        driver = LoadDriver(
            target, concurrency=args.concurrency, pace=not args.no_pace
        )
        try:
            result = driver.run(config, label=args.label)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            if service is not None:
                service.close()
        payload = result.to_dict()
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        if args.json:
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            pcts = result.percentiles()
            print(f"{result.n_requests} request(s) in "
                  f"{result.duration_s:.2f}s — offered "
                  f"{result.offered_rps:.1f} req/s, achieved "
                  f"{result.achieved_rps:.1f} req/s")
            print("outcomes: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(result.outcomes.items())
            ))
            print(f"latency p50={pcts.get('p50', 0.0) * 1e3:.2f}ms "
                  f"p95={pcts.get('p95', 0.0) * 1e3:.2f}ms "
                  f"p99={pcts.get('p99', 0.0) * 1e3:.2f}ms  cost "
                  f"{result.cost_total:.4f}")
            print(f"sequence {result.sequence_fp}")
        if args.db:
            from .obs.ledger import RunLedger

            with RunLedger(args.db) as ledger:
                load_id = ledger.record_load_run(result.to_row())
            print(f"archived load_run #{load_id} to {args.db}")
        return 0

    if cmd == "report":
        from .loadgen import write_load_report
        from .obs.ledger import RunLedger

        with RunLedger(args.db) as ledger:
            if args.label:
                rows = []
                for label in args.label:
                    rows.extend(ledger.load_runs(
                        label=label, limit=args.limit
                    ))
            else:
                rows = ledger.load_runs(limit=args.limit)
        if not rows:
            print("error: no load runs in the ledger", file=sys.stderr)
            return 2
        path = write_load_report(rows, args.out, title=args.title)
        print(f"{len(rows)} load run(s) written to {path}")
        return 0

    return 1  # pragma: no cover - argparse guards subcommands


def _run_dash(args: argparse.Namespace) -> int:
    """The ``dash`` command: live terminal dashboard over a gateway."""
    from .loadgen import Dashboard

    dashboard = Dashboard(
        args.url, interval_s=args.interval, ansi=not args.no_ansi
    )
    frames = dashboard.run(
        iterations=args.iterations, events=not args.no_events
    )
    return 0 if frames > 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command in _FIGURES:
        builder, metrics = _FIGURES[args.command]
        if args.ledger:
            from .obs.ledger import RunLedger, use_ledger

            with RunLedger(args.ledger) as ledger:
                with use_ledger(ledger):
                    data = builder(_config_from_args(args))
                print(f"archived {ledger.count()} run(s) to {args.ledger}")
        else:
            data = builder(_config_from_args(args))
        for metric in metrics:
            print(render_figure(data, metric=metric))
        if args.csv:
            with open(args.csv, "w", newline="") as fh:
                records_to_csv(data.records, fh)
            print(f"raw records written to {args.csv}")
        return 0

    if args.command == "table2":
        for key, value in table2_rows():
            print(f"{key:>14s}: {value}")
        return 0

    if args.command == "sigma":
        from .experiments.sigma_study import render_sigma_study, sigma_study

        study = sigma_study(
            n_tasks=args.tasks, n_reps=args.reps,
            budget_position=args.position,
        )
        print(render_sigma_study(study))
        return 0

    if args.command == "frontier":
        from .experiments.budget_frontier import frontier_study, render_frontier

        print(render_frontier(frontier_study(sizes=tuple(args.sizes))))
        return 0

    algorithms = ["minmin", "heft", "minmin_budg", "heft_budg", "bdt", "cg"]
    if args.command == "table3a":
        if args.refined:
            algorithms += ["heft_budg_plus", "heft_budg_plus_inv", "cg_plus"]
        table = table3a(
            n_tasks=args.tasks, repeats=args.repeats, algorithms=algorithms
        )
        print(render_cpu_table(table, title="Table III(a): CPU time vs budget"))
        return 0

    if args.command == "serve":
        from .service.http import serve

        serve(
            host=args.host, port=args.port, max_workers=args.workers,
            cache_size=args.cache_size, cache_ttl=args.cache_ttl,
            ledger_path=args.ledger,
            max_queue_depth=args.max_queue_depth,
            job_timeout=args.job_timeout, max_retries=args.max_retries,
            executor=args.executor, nodes=args.nodes,
            tenants_path=args.tenants,
            log_level=args.log_level, log_json=args.log_json,
        )
        return 0

    if args.command == "worker":
        return _run_worker(args)

    if args.command == "schedule":
        from .obs.logging import configure_logging

        configure_logging(level=args.log_level, json_mode=args.log_json)
        return _run_schedule(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "slo":
        return _run_slo(args)

    if args.command == "profile":
        return _run_profile(args)

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "ledger":
        return _run_ledger(args)

    if args.command == "load":
        return _run_load(args)

    if args.command == "dash":
        return _run_dash(args)

    if args.command == "table3b":
        if args.refined:
            algorithms += ["heft_budg_plus", "heft_budg_plus_inv"]
        table = table3b(repeats=args.repeats, algorithms=algorithms)
        print(render_cpu_table(table, title="Table III(b): CPU time vs size"))
        return 0

    return 1  # pragma: no cover - argparse guards commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
