"""JSON persistence for schedules and simulation results.

Schedules are planning artefacts users want to archive, diff, and replay
(e.g. compute once on a build machine, execute/analyze elsewhere); results
feed external analysis. Both get stable, versioned JSON encodings.

VM categories are embedded by value (name, speed, costs...), so a loaded
schedule is self-contained — it does not need the original platform object,
only a workflow with matching task ids.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, IO, Union

from .errors import PlatformError, ScheduleValidationError
from .platform.cloud import CloudPlatform
from .platform.pricing import SpotMarket
from .platform.vm import VMCategory
from .scheduling.schedule import Schedule
from .simulation.trace import SimulationResult

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "dump_schedule",
    "load_schedule",
    "result_to_dict",
    "platform_to_dict",
    "platform_from_dict",
    "canonical_json",
    "fingerprint",
    "runs_to_csv",
]

_SCHEDULE_FORMAT = "repro.schedule/1"
_RESULT_FORMAT = "repro.result/1"
_PLATFORM_FORMAT = "repro.platform/1"


def _category_to_dict(cat: VMCategory) -> Dict[str, Any]:
    out = {
        "name": cat.name,
        "speed": cat.speed,
        "hourly_cost": cat.hourly_cost,
        "initial_cost": cat.initial_cost,
        "boot_time": cat.boot_time,
        "cores": cat.cores,
    }
    # Emitted only when set so pre-spot payloads (and their fingerprints)
    # are byte-identical to what older versions produced.
    if cat.spot:
        out["spot"] = True
    return out


def _category_from_dict(data: Dict[str, Any]) -> VMCategory:
    return VMCategory(
        name=data["name"],
        speed=data["speed"],
        hourly_cost=data["hourly_cost"],
        initial_cost=data.get("initial_cost", 0.0),
        boot_time=data.get("boot_time", 0.0),
        cores=data.get("cores", 1),
        spot=bool(data.get("spot", False)),
    )


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Encode a schedule as a JSON-ready dict."""
    return {
        "format": _SCHEDULE_FORMAT,
        "order": list(schedule.order),
        "assignment": dict(schedule.assignment),
        "categories": {
            str(vm_id): _category_to_dict(cat)
            for vm_id, cat in schedule.categories.items()
        },
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Decode a schedule; raises on unknown format or malformed payload."""
    if data.get("format") != _SCHEDULE_FORMAT:
        raise ScheduleValidationError(
            f"unsupported schedule format {data.get('format')!r}"
        )
    try:
        return Schedule(
            order=list(data["order"]),
            assignment={tid: int(vm) for tid, vm in data["assignment"].items()},
            categories={
                int(vm_id): _category_from_dict(cat)
                for vm_id, cat in data["categories"].items()
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleValidationError(f"malformed schedule payload: {exc}") from exc


def dump_schedule(schedule: Schedule, fp: Union[str, IO[str]]) -> None:
    """Write a schedule to a path or text file object."""
    payload = schedule_to_dict(schedule)
    if isinstance(fp, str):
        with open(fp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    else:
        json.dump(payload, fp, indent=2, sort_keys=True)


def load_schedule(fp: Union[str, IO[str]]) -> Schedule:
    """Read a schedule from a path or text file object."""
    if isinstance(fp, str):
        with open(fp) as fh:
            data = json.load(fh)
    else:
        data = json.load(fp)
    return schedule_from_dict(data)


def platform_to_dict(platform: CloudPlatform) -> Dict[str, Any]:
    """Encode a platform as a JSON-ready dict (inverse of
    :func:`platform_from_dict`)."""
    out = {
        "format": _PLATFORM_FORMAT,
        "name": platform.name,
        "bandwidth": platform.bandwidth,
        "transfer_cost_per_byte": platform.transfer_cost_per_byte,
        "storage_cost_per_byte_month": platform.storage_cost_per_byte_month,
        "datacenter_rate_override": platform.datacenter_rate_override,
        "categories": [_category_to_dict(cat) for cat in platform.categories],
    }
    # Only present on spot-enabled platforms, keeping legacy payload
    # fingerprints unchanged.
    if platform.spot_market is not None:
        out["spot_market"] = platform.spot_market.to_dict()
    return out


def platform_from_dict(data: Dict[str, Any]) -> CloudPlatform:
    """Decode a platform; raises on unknown format or malformed payload."""
    if data.get("format") != _PLATFORM_FORMAT:
        raise PlatformError(
            f"unsupported platform format {data.get('format')!r}"
        )
    market = data.get("spot_market")
    try:
        return CloudPlatform(
            categories=tuple(
                _category_from_dict(cat) for cat in data["categories"]
            ),
            bandwidth=data["bandwidth"],
            transfer_cost_per_byte=data.get("transfer_cost_per_byte", 0.0),
            storage_cost_per_byte_month=data.get(
                "storage_cost_per_byte_month", 0.0
            ),
            datacenter_rate_override=data.get("datacenter_rate_override"),
            name=data.get("name", "cloud"),
            spot_market=(
                SpotMarket.from_dict(market) if market is not None else None
            ),
        )
    except PlatformError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PlatformError(f"malformed platform payload: {exc}") from exc


def canonical_json(payload: Any) -> str:
    """A canonical JSON rendering: sorted keys, no whitespace, NaN banned.

    Two structurally equal payloads always render to the same string, which
    makes the output safe to hash (see :func:`fingerprint`).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(payload: Any) -> str:
    """Stable SHA-256 hex digest of a JSON-able payload.

    Used as a content-addressed cache key by :mod:`repro.service`.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def runs_to_csv(rows: Any, fp: IO[str]) -> int:
    """Write ledger run rows (``repro.obs.ledger.RunRow``) as CSV.

    Accepts any iterable of objects with a ``to_dict()`` method (duck-typed
    to keep this module free of ``repro.obs`` imports); nested ``extra``
    diagnostics are flattened to a JSON string cell. Returns the number of
    rows written.
    """
    import csv

    writer = None
    n = 0
    for row in rows:
        data = row.to_dict()
        data["extra"] = json.dumps(data.get("extra", {}), sort_keys=True)
        if writer is None:
            writer = csv.DictWriter(fp, fieldnames=list(data))
            writer.writeheader()
        writer.writerow(data)
        n += 1
    return n


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Encode a simulation result (one-way: for analysis/export)."""
    return {
        "format": _RESULT_FORMAT,
        "makespan": result.makespan,
        "start": result.start,
        "end": result.end,
        "total_cost": result.total_cost,
        "cost": {
            "vm_rental": result.cost.vm_rental,
            "vm_initial": result.cost.vm_initial,
            "datacenter_time": result.cost.datacenter_time,
            "datacenter_io": result.cost.datacenter_io,
        },
        "tasks": {
            tid: {
                "vm_id": rec.vm_id,
                "download_start": rec.download_start,
                "compute_start": rec.compute_start,
                "compute_end": rec.compute_end,
                "outputs_at_dc": rec.outputs_at_dc,
                "actual_weight": rec.actual_weight,
            }
            for tid, rec in result.tasks.items()
        },
        "vms": [
            {
                "vm_id": vm.vm_id,
                "category": _category_to_dict(vm.category),
                "booked_at": vm.booked_at,
                "ready_at": vm.ready_at,
                "end_at": vm.end_at,
                "n_tasks": vm.n_tasks,
            }
            for vm in result.vms
        ],
    }
