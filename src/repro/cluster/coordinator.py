"""The coordinator side of the cluster fabric: :class:`ClusterPool`.

``ClusterPool`` exposes the same ordered-``map`` surface as
:class:`repro.parallel.WorkerPool`, so every call site that shards work
over local processes can shard it over machines instead — and because
the ShardPlan contract makes results a pure function of the shard (never
of who computed it), the merged output is **bit-identical to serial no
matter which node computed which shard, in what order, or how many times**.

PR 5's crash/respawn semantics generalise to node loss:

* **liveness** — every worker streams heartbeats; a node whose
  connection drops *or* whose heartbeats go stale past
  ``heartbeat_timeout`` is declared lost (a wedged node is handled
  exactly like a dead one);
* **reassignment** — a lost node's in-flight shards are requeued onto
  the survivors, one attempt each, up to ``max_retries`` per shard;
  exhaustion raises :class:`~repro.errors.WorkerCrashError` with the
  affected shard indices, exactly like a local pool crash;
* **work stealing** — once the queue drains, an idle node duplicates the
  longest-in-flight shard of a slow peer (after ``steal_after_s``);
  the first result wins and late duplicates are suppressed, which is
  safe precisely because shard results are deterministic;
* **bounded in-flight** — each node holds at most ``2 × slots`` shards,
  so a thousand-cell sweep is never pickled onto the wire up front.

Observability: ``node.joined`` / ``node.lost`` / ``shard.reassigned``
events on the wired :class:`~repro.obs.events.EventBus`,
``cluster_reassignments`` (+ the pool-parity ``worker_tasks`` /
``worker_task_seconds``) metrics, and worker span payloads merged into
the caller's live trace via the PR 7 ``export_payload`` path.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import ClusterError, ClusterProtocolError, WorkerCrashError
from ..obs.events import NODE_JOINED, NODE_LOST, SHARD_REASSIGNED
from ..obs.tracing import get_tracer
from . import protocol

__all__ = ["ClusterPool"]

NodeSpec = Union[str, Tuple[str, int]]


class _Node:
    """One connected worker node (internal)."""

    def __init__(
        self, address: str, sock: socket.socket, *, pid: int, slots: int
    ) -> None:
        self.address = address
        self.sock = sock
        self.pid = pid
        self.slots = slots
        self.alive = True
        self.last_seen = time.time()
        self.tasks = 0
        self.busy_s = 0.0
        self.inflight: Set[int] = set()  # task_ids currently on this node
        self._write_lock = threading.Lock()

    def send(self, frame: Dict[str, Any]) -> bool:
        with self._write_lock:
            try:
                protocol.send_frame(self.sock, frame)
                return True
            except OSError:
                return False

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


class ClusterPool:
    """Dispatch shards to remote ``repro-exp worker`` nodes.

    Parameters
    ----------
    nodes:
        ``"host:port,host:port"`` or a sequence of ``"host:port"`` /
        ``(host, port)`` specs. Every node must accept the handshake at
        construction time — a cluster that starts degraded is a config
        error, while a node lost *later* is handled by reassignment.
    max_retries:
        Reassignment attempts per shard after node losses before
        :class:`~repro.errors.WorkerCrashError`.
    heartbeat_timeout:
        Seconds of heartbeat silence after which a node is declared lost.
    steal_after_s:
        Age at which an idle node may duplicate a slow peer's oldest
        in-flight shard (``None`` disables work stealing).
    metrics / events:
        Optional :class:`~repro.service.metrics.MetricsRegistry` /
        :class:`~repro.obs.events.EventBus`, receiving the pool-parity
        counters plus ``cluster_reassignments`` and the node lifecycle
        events.
    token:
        Shared handshake token (must match the workers').
    """

    def __init__(
        self,
        nodes: Union[str, Sequence[NodeSpec]],
        *,
        max_retries: int = 2,
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        steal_after_s: Optional[float] = 30.0,
        metrics: Optional[Any] = None,
        events: Optional[Any] = None,
        token: Optional[str] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        specs = self._parse_specs(nodes)
        if not specs:
            raise ClusterError("ClusterPool needs at least one node")
        self.max_retries = max_retries
        self.heartbeat_timeout = heartbeat_timeout
        self.steal_after_s = steal_after_s
        self._metrics = metrics
        self._events = events
        self._token = token
        self._closed = False
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Tuple[str, _Node, Optional[dict]]]" = (
            queue.Queue()
        )
        self._task_ids = itertools.count(1)
        self.n_crashes = 0  # node losses, for WorkerPool attr parity
        self.n_respawns = 0  # the pool never reconnects; documented
        self.n_reassignments = 0
        self._nodes: List[_Node] = []
        try:
            for host, port in specs:
                self._nodes.append(
                    self._connect(host, port, timeout=connect_timeout)
                )
        except Exception:
            self.close()
            raise
        #: Total advertised slots — drives ShardPlan sizing, mirroring
        #: ``WorkerPool.workers``.
        self.workers = sum(node.slots for node in self._nodes)
        for node in self._nodes:
            thread = threading.Thread(
                target=self._receive_loop,
                args=(node,),
                name=f"repro-cluster-recv-{node.address}",
                daemon=True,
            )
            thread.start()

    # ------------------------------------------------------------------
    # construction helpers

    @staticmethod
    def _parse_specs(
        nodes: Union[str, Sequence[NodeSpec]]
    ) -> List[Tuple[str, int]]:
        if isinstance(nodes, str):
            parts: Sequence[NodeSpec] = [
                part for part in nodes.split(",") if part.strip()
            ]
        else:
            parts = nodes
        specs: List[Tuple[str, int]] = []
        for part in parts:
            if isinstance(part, str):
                specs.append(protocol.parse_address(part))
            else:
                host, port = part
                specs.append((host, int(port)))
        return specs

    def _connect(self, host: str, port: int, *, timeout: float) -> _Node:
        address = f"{host}:{port}"
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ClusterError(
                f"cannot connect to worker node {address}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            protocol.send_frame(sock, protocol.hello_frame(token=self._token))
            welcome = protocol.recv_frame(sock)
            if welcome is not None and welcome.get("type") == "error":
                raise ClusterProtocolError(
                    f"node {address} refused the handshake: "
                    f"{welcome.get('exception', {}).get('message', '')}"
                )
            protocol.check_handshake(welcome, expect="welcome")
        except (ClusterProtocolError, OSError) as exc:
            sock.close()
            if isinstance(exc, ClusterProtocolError):
                raise
            raise ClusterError(
                f"handshake with node {address} failed: {exc}"
            ) from exc
        sock.settimeout(None)
        node = _Node(
            address,
            sock,
            pid=int(welcome["pid"]),
            slots=int(welcome["slots"]),
        )
        if self._events is not None:
            self._events.publish(
                NODE_JOINED, node=address, pid=node.pid, slots=node.slots
            )
        return node

    # ------------------------------------------------------------------
    # receiver threads

    def _receive_loop(self, node: _Node) -> None:
        while True:
            try:
                frame = protocol.recv_frame(node.sock)
            except (ClusterProtocolError, OSError):
                frame = None
            if frame is None or frame.get("type") == "bye":
                # Mark the node dead right here so liveness surfaces
                # (health endpoints, alive_count) see the loss even when
                # no map() is draining the queue; the queued "lost" item
                # still drives in-flight reclamation inside an active map.
                self._mark_lost(node, "connection closed", None)
                self._queue.put(("lost", node, None))
                return
            node.last_seen = time.time()
            kind = frame.get("type")
            if kind in ("result", "error"):
                self._queue.put((kind, node, frame))
            # heartbeats only refresh last_seen

    # ------------------------------------------------------------------
    # introspection

    def _alive(self) -> List[_Node]:
        return [node for node in self._nodes if node.alive]

    @property
    def alive_count(self) -> int:
        """Number of nodes currently believed alive."""
        return len(self._alive())

    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-node snapshot keyed by ``host:port``.

        Mirrors :meth:`WorkerPool.worker_stats` (``tasks`` / ``busy_s`` /
        ``last_seen``) and adds node identity: ``pid``, ``slots``,
        ``alive``, ``inflight``.
        """
        return {
            node.address: {
                "tasks": node.tasks,
                "busy_s": node.busy_s,
                "last_seen": node.last_seen,
                "pid": node.pid,
                "slots": node.slots,
                "alive": node.alive,
                "inflight": len(node.inflight),
            }
            for node in self._nodes
        }

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Say goodbye to every node and drop the connections; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for node in getattr(self, "_nodes", []):
            if node.alive:
                node.send(protocol.bye_frame("coordinator closing"))
            node.alive = False
            node.close()

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution

    def run(
        self,
        fn: Callable[[Any], Any],
        item: Any,
        timeout: Optional[float] = None,
    ) -> Any:
        """Run one ``fn(item)`` on some node (single-item :meth:`map`)."""
        (result,) = self.map(fn, [item], timeout=timeout)
        return result

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run ``fn`` over ``items`` across the cluster, results in order.

        Exceptions raised by ``fn`` propagate unchanged — they are the
        item's answer and are never retried; only node loss triggers
        reassignment. The first result per item wins; duplicates from
        stolen or reassigned dispatches are suppressed, so merges stay
        bit-identical to serial.
        """
        if self._closed:
            raise RuntimeError("ClusterPool is closed")
        n_items = len(items)
        if n_items == 0:
            return []
        state = _MapState(n_items)
        deadline = None if timeout is None else time.monotonic() + timeout

        parent_tracer = get_tracer()
        trace_ctx: Optional[Dict[str, Any]] = None
        merge_parent_id: Optional[int] = None
        if parent_tracer.enabled:
            trace_ctx = {"trace_id": parent_tracer.trace_id}
            merge_parent_id = parent_tracer.current_span_id()

        poll_s = max(0.05, min(1.0, self.heartbeat_timeout / 4.0))
        while state.n_done < n_items:
            alive = self._alive()
            if not alive:
                raise WorkerCrashError(
                    "all cluster nodes lost; "
                    f"{n_items - state.n_done} shard(s) unfinished",
                    shard_indices=tuple(
                        i for i in range(n_items) if not state.done[i]
                    ),
                )
            self._dispatch(fn, items, state, alive, trace_ctx)
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"ClusterPool.map timed out with "
                        f"{len(state.dispatches)} in-flight and "
                        f"{len(state.pending)} queued items"
                    )
            try:
                kind, node, frame = self._queue.get(
                    timeout=poll_s if remaining is None
                    else min(poll_s, remaining)
                )
            except queue.Empty:
                self._check_heartbeats(state)
                continue
            if kind == "lost":
                self._mark_lost(node, "connection closed", state)
            elif kind == "result":
                self._handle_result(
                    node, frame, state, parent_tracer, merge_parent_id
                )
            elif kind == "error":
                self._handle_error(node, frame, state)
            self._check_heartbeats(state)
        return state.results

    # ------------------------------------------------------------------
    # map internals

    def _dispatch(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        state: "_MapState",
        alive: List[_Node],
        trace_ctx: Optional[Dict[str, Any]],
    ) -> None:
        for node in alive:
            while state.pending and len(node.inflight) < 2 * node.slots:
                index = state.pending.popleft()
                if state.done[index]:
                    continue
                if not self._send_shard(
                    fn, items, index, node, state, trace_ctx
                ):
                    state.pending.appendleft(index)
                    self._mark_lost(node, "send failed", state)
                    break
        if not state.pending and self.steal_after_s is not None:
            self._steal(fn, items, state, trace_ctx)

    def _send_shard(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        index: int,
        node: _Node,
        state: "_MapState",
        trace_ctx: Optional[Dict[str, Any]],
    ) -> bool:
        payload = state.payloads.get(index)
        if payload is None:
            payload = protocol.encode_payload((fn, items[index]))
            state.payloads[index] = payload
        task_id = next(self._task_ids)
        frame = protocol.shard_frame(task_id, payload, trace=trace_ctx)
        if not node.send(frame):
            return False
        node.inflight.add(task_id)
        state.dispatches[task_id] = (index, node, time.monotonic())
        state.active_by_index.setdefault(index, set()).add(task_id)
        state.nodes_by_index.setdefault(index, set()).add(node.address)
        return True

    def _steal(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        state: "_MapState",
        trace_ctx: Optional[Dict[str, Any]],
    ) -> None:
        """Duplicate the oldest slow shard onto an idle node."""
        now = time.monotonic()
        idle = [
            node for node in self._alive() if not node.inflight
        ]
        if not idle:
            return
        candidates = sorted(
            (
                (sent, index)
                for task_id, (index, _node, sent) in state.dispatches.items()
                if not state.done[index]
                and len(state.active_by_index.get(index, ())) == 1
                and now - sent >= (self.steal_after_s or 0.0)
            ),
        )
        for node in idle:
            for sent, index in candidates:
                if node.address in state.nodes_by_index.get(index, ()):
                    continue
                if len(state.active_by_index.get(index, ())) != 1:
                    continue
                self._send_shard(fn, items, index, node, state, trace_ctx)
                break

    def _handle_result(
        self,
        node: _Node,
        frame: Dict[str, Any],
        state: "_MapState",
        parent_tracer: Any,
        merge_parent_id: Optional[int],
    ) -> None:
        task_id = frame.get("task_id")
        node.inflight.discard(task_id)
        entry = state.dispatches.pop(task_id, None)
        if entry is None:
            return  # stale frame from an earlier map / late duplicate
        index, _node, _sent = entry
        state.active_by_index.get(index, set()).discard(task_id)
        elapsed = float(frame.get("elapsed_s", 0.0))
        node.tasks += 1
        node.busy_s += elapsed
        if self._metrics is not None:
            self._metrics.incr("worker_tasks")
            self._metrics.observe("worker_task_seconds", elapsed)
        if state.done[index]:
            return  # a duplicate finished second: suppressed
        trace = frame.get("trace")
        if trace is not None and parent_tracer.enabled:
            parent_tracer.merge_payload(
                trace, parent_id=merge_parent_id, worker_pid=node.pid
            )
        state.results[index] = protocol.decode_payload(frame["payload"])
        state.done[index] = True
        state.n_done += 1

    def _handle_error(
        self, node: _Node, frame: Dict[str, Any], state: "_MapState"
    ) -> None:
        task_id = frame.get("task_id")
        exc = protocol.decode_exception(frame.get("exception", {}))
        if frame.get("kind") == "protocol" or task_id is None:
            self._mark_lost(node, f"protocol error: {exc}", state)
            return
        node.inflight.discard(task_id)
        entry = state.dispatches.pop(task_id, None)
        if entry is None:
            return
        index, _node, _sent = entry
        state.active_by_index.get(index, set()).discard(task_id)
        if state.done[index]:
            return
        # fn raised: that is the item's answer, never retried.
        raise exc

    def _mark_lost(
        self, node: _Node, reason: str, state: Optional["_MapState"]
    ) -> None:
        # close() sends bye and the worker hangs up, so the receive
        # thread's EOF races the alive=False flip below: a goodbye we
        # initiated must never be counted (or published) as a node loss.
        newly_lost = node.alive and not self._closed
        if newly_lost:
            node.alive = False
            node.close()
            self.n_crashes += 1
            if self._events is not None:
                self._events.publish(
                    NODE_LOST,
                    node=node.address,
                    pid=node.pid,
                    reason=reason,
                    inflight=len(node.inflight),
                )
        if state is None:
            return
        orphans = [
            task_id
            for task_id, (_i, owner, _sent) in state.dispatches.items()
            if owner is node
        ]
        exhausted: List[int] = []
        for task_id in orphans:
            index, _owner, _sent = state.dispatches.pop(task_id)
            node.inflight.discard(task_id)
            active = state.active_by_index.get(index, set())
            active.discard(task_id)
            if state.done[index] or active:
                continue  # answered, or a duplicate is still running
            state.attempts[index] += 1
            if state.attempts[index] > self.max_retries:
                exhausted.append(index)
                continue
            state.pending.append(index)
            self.n_reassignments += 1
            if self._metrics is not None:
                self._metrics.incr("cluster_reassignments")
            if self._events is not None:
                self._events.publish(
                    SHARD_REASSIGNED,
                    shard_index=index,
                    from_node=node.address,
                    attempt=state.attempts[index],
                )
        if exhausted:
            raise WorkerCrashError(
                f"node {node.address} lost and {len(exhausted)} shard(s) "
                f"exhausted {self.max_retries} retries",
                shard_indices=tuple(sorted(exhausted)),
            )

    def _check_heartbeats(self, state: "_MapState") -> None:
        stale_before = time.time() - self.heartbeat_timeout
        for node in self._nodes:
            if node.alive and node.last_seen < stale_before:
                self._mark_lost(node, "heartbeat stale", state)


class _MapState:
    """Book-keeping of one :meth:`ClusterPool.map` call (internal)."""

    def __init__(self, n_items: int) -> None:
        self.results: List[Any] = [None] * n_items
        self.done = [False] * n_items
        self.attempts = [0] * n_items
        self.pending: deque = deque(range(n_items))
        self.n_done = 0
        # task_id -> (item index, node, dispatch time)
        self.dispatches: Dict[int, Tuple[int, _Node, float]] = {}
        # item index -> task_ids currently in flight for it
        self.active_by_index: Dict[int, Set[int]] = {}
        # item index -> node addresses that ever held it (steal targets)
        self.nodes_by_index: Dict[int, Set[str]] = {}
        # item index -> encoded payload (reused on reassignment)
        self.payloads: Dict[int, str] = {}
