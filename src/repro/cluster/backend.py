"""Backend selection: one ``workers`` knob for serial / process / cluster.

Every fan-out entry point (``run_point``, ``run_sweep``,
``resilience_sweep``, ``spot_resilience_sweep``, the service executor,
the CLI ``--workers`` flags) accepts the same knob:

* an **integer** (or numeric string) — ``0``/``1`` serial, ``N`` a local
  :class:`~repro.parallel.WorkerPool` of ``N`` processes, negative all
  cores (see :func:`~repro.parallel.resolve_workers`, which also honours
  the ``REPRO_WORKERS`` environment override);
* a **node list** ``"host:port,host:port"`` — a
  :class:`~repro.cluster.ClusterPool` over those ``repro-exp worker``
  nodes.

:func:`parse_workers` normalises the knob into a :class:`BackendSpec`
and raises :class:`~repro.errors.WorkerConfigError` on anything
malformed; :func:`make_pool` turns a spec into the matching pool (or
``None`` for serial). Both pool kinds expose the same ordered-``map``
surface, so call sites stay backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from ..errors import ClusterProtocolError, WorkerConfigError
from ..parallel import WorkerPool, resolve_workers
from . import protocol
from .coordinator import ClusterPool

__all__ = ["BackendSpec", "parse_workers", "make_pool"]

WorkersKnob = Union[int, str, "BackendSpec", None]


@dataclass(frozen=True)
class BackendSpec:
    """A resolved execution backend choice.

    ``kind`` is ``"serial"`` (run inline), ``"process"`` (local
    :class:`WorkerPool` of ``n_workers``), or ``"cluster"``
    (:class:`ClusterPool` over ``nodes``).
    """

    kind: str
    n_workers: int = 0
    nodes: Tuple[str, ...] = ()

    @property
    def is_serial(self) -> bool:
        """True when no pool should be built at all."""
        return self.kind == "serial"

    def describe(self) -> str:
        """Human-readable form for logs and CLI output."""
        if self.kind == "cluster":
            return f"cluster[{','.join(self.nodes)}]"
        if self.kind == "process":
            return f"process[{self.n_workers}]"
        return "serial"


def parse_workers(workers: WorkersKnob) -> BackendSpec:
    """Normalise a ``workers`` knob into a :class:`BackendSpec`.

    Raises :class:`~repro.errors.WorkerConfigError` on malformed node
    lists, non-numeric non-address strings, or unsupported types — a
    config error is deterministic and never retried.
    """
    if isinstance(workers, BackendSpec):
        return workers
    if workers is None:
        workers = 0
    if isinstance(workers, bool):
        raise WorkerConfigError(f"workers must be int or str, got {workers!r}")
    if isinstance(workers, int):
        n_workers = resolve_workers(workers)
        if n_workers <= 1:
            return BackendSpec(kind="serial", n_workers=n_workers)
        return BackendSpec(kind="process", n_workers=n_workers)
    if isinstance(workers, str):
        text = workers.strip()
        if not text:
            return parse_workers(0)
        try:
            return parse_workers(int(text))
        except ValueError:
            pass
        if ":" not in text:
            raise WorkerConfigError(
                f"workers spec {workers!r} is neither an integer nor a "
                f"host:port[,host:port...] node list"
            )
        nodes = tuple(part.strip() for part in text.split(",") if part.strip())
        if not nodes:
            raise WorkerConfigError(f"empty cluster node list {workers!r}")
        for node in nodes:
            try:
                protocol.parse_address(node)
            except ClusterProtocolError as exc:
                raise WorkerConfigError(
                    f"bad node {node!r} in workers spec {workers!r}: {exc}"
                ) from exc
        return BackendSpec(kind="cluster", nodes=nodes)
    raise WorkerConfigError(
        f"workers must be an int or str, got {type(workers).__name__}"
    )


def make_pool(
    spec: WorkersKnob,
    *,
    max_retries: int = 2,
    metrics: Optional[Any] = None,
    events: Optional[Any] = None,
    max_workers: Optional[int] = None,
    **cluster_kwargs: Any,
) -> Optional[Union[WorkerPool, ClusterPool]]:
    """Build the pool a spec calls for (``None`` for serial).

    ``max_workers`` caps a *process* pool's size (e.g. at the number of
    available tasks); cluster pools always use every connected node —
    idle nodes cost nothing and give reassignment head-room.
    Extra keyword arguments (``heartbeat_timeout``, ``token``, ...) are
    forwarded to :class:`ClusterPool`.
    """
    backend = parse_workers(spec)
    if backend.is_serial:
        return None
    if backend.kind == "process":
        n_workers = backend.n_workers
        if max_workers is not None:
            n_workers = max(1, min(n_workers, max_workers))
        return WorkerPool(
            n_workers, max_retries=max_retries, metrics=metrics, events=events
        )
    return ClusterPool(
        backend.nodes,
        max_retries=max_retries,
        metrics=metrics,
        events=events,
        **cluster_kwargs,
    )
