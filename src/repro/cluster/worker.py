"""The long-lived cluster worker node (``repro-exp worker``).

A :class:`ClusterWorker` binds a listening socket and serves shard frames
from any number of coordinator connections. Execution follows the PR 5
fork-hygiene rules, generalised to a freestanding process:

* on startup the process-global ledger and tracer are reset to their
  null implementations — a worker node computes and returns values, the
  coordinator records, in serial order;
* a shard that arrives with a ``trace`` context runs under a worker-local
  :class:`~repro.obs.tracing.Tracer` sharing the coordinator's
  ``trace_id``; its span/counter payload rides back in the ``result``
  frame so the coordinator can merge it into one request trace
  (the PR 7 ``export_payload`` path, across machines instead of forks);
* untraced shards pay nothing.

Each connection gets a heartbeat thread streaming liveness + cumulative
load every ``heartbeat_s`` seconds; the coordinator declares a node lost
when heartbeats go stale, so a wedged worker is handled exactly like a
dead one. ``slots`` is the node's advertised parallelism: shards execute
on a thread pool of that size (the default of 1 serialises execution —
shard functions are CPU-bound Python, so scale out with more *worker
processes*, not more slots).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..errors import ClusterProtocolError
from ..obs.tracing import Tracer, use_tracer
from . import protocol

__all__ = ["ClusterWorker"]


def _reset_process_globals() -> None:
    """Apply the fork-hygiene rules to this freestanding process."""
    from ..obs.ledger import set_ledger
    from ..obs.tracing import set_tracer

    set_ledger(None)
    set_tracer(None)


def _execute_shard(
    frame: Dict[str, Any],
) -> Tuple[str, float, Optional[Dict[str, Any]]]:
    """Run one shard frame; returns (result payload, elapsed, trace)."""
    fn, item = protocol.decode_payload(frame["payload"])
    trace_ctx = frame.get("trace")
    start = time.perf_counter()
    if trace_ctx is None:
        result = fn(item)
        return (
            protocol.encode_payload(result),
            time.perf_counter() - start,
            None,
        )
    tracer = Tracer(trace_id=trace_ctx.get("trace_id"))
    with use_tracer(tracer):
        result = fn(item)
    elapsed = time.perf_counter() - start
    return protocol.encode_payload(result), elapsed, tracer.export_payload()


class ClusterWorker:
    """One worker node: a listening socket plus a shard executor.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    slots:
        Advertised parallelism (thread-pool size; see module docs).
    heartbeat_s:
        Interval between heartbeat frames on each connection.
    token:
        Optional shared secret; connections whose ``hello`` carries a
        different token are refused. Accident prevention, not auth.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        slots: int = 1,
        heartbeat_s: float = 1.0,
        token: Optional[str] = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"worker needs >= 1 slot, got {slots}")
        self._host = host
        self._port = port
        self.slots = slots
        self.heartbeat_s = heartbeat_s
        self._token = token
        self._listener: Optional[socket.socket] = None
        self._address: Optional[Tuple[str, int]] = None
        self._executor = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="repro-cluster-shard"
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self.tasks_done = 0
        self.busy_s = 0.0
        self.n_inflight = 0

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("worker is not started")
        return self._address

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting connections; returns address."""
        _reset_process_globals()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Block until :meth:`close` (for the CLI entry point)."""
        if self._listener is None:
            self.start()
        self._closed.wait()

    def close(self) -> None:
        """Stop accepting, drop connections, shut the executor down."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._executor.shutdown(wait=False)
        # Drop live connections too: their frame loops block in recv and
        # would otherwise outlive the worker, leaving coordinators to
        # discover the death only via heartbeat staleness.
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ClusterWorker":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection handling

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-cluster-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self._conns.add(conn)
        write_lock = threading.Lock()

        def send(frame: Dict[str, Any]) -> bool:
            with write_lock:
                try:
                    protocol.send_frame(conn, frame)
                    return True
                except OSError:
                    return False

        try:
            hello = protocol.recv_frame(conn)
            protocol.check_handshake(
                hello, expect="hello", token=self._token
            )
        except ClusterProtocolError as exc:
            send(protocol.error_frame(None, exc, kind="protocol"))
            conn.close()
            with self._lock:
                self._conns.discard(conn)
            return
        send(
            protocol.welcome_frame(
                pid=os.getpid(), slots=self.slots, host=self._host
            )
        )
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(send, stop_heartbeat),
            name="repro-cluster-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            self._frame_loop(conn, send)
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=2.0)
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _heartbeat_loop(self, send: Any, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_s):
            if self._closed.is_set():
                return
            with self._lock:
                frame = protocol.heartbeat_frame(
                    pid=os.getpid(),
                    tasks=self.tasks_done,
                    busy_s=self.busy_s,
                    inflight=self.n_inflight,
                )
            if not send(frame):
                return

    def _frame_loop(self, conn: socket.socket, send: Any) -> None:
        while not self._closed.is_set():
            try:
                frame = protocol.recv_frame(conn)
            except ClusterProtocolError as exc:
                send(protocol.error_frame(None, exc, kind="protocol"))
                return
            except OSError:
                return
            if frame is None or frame.get("type") == "bye":
                return
            kind = frame.get("type")
            if kind == "shard":
                with self._lock:
                    self.n_inflight += 1
                try:
                    self._executor.submit(self._run_shard, frame, send)
                except RuntimeError:
                    # executor already shut down: the worker is closing,
                    # drop the connection and let the coordinator reassign
                    with self._lock:
                        self.n_inflight -= 1
                    return
            elif kind == "heartbeat":  # pragma: no cover - not sent today
                continue
            else:
                send(
                    protocol.error_frame(
                        None,
                        ClusterProtocolError(f"unexpected frame {kind!r}"),
                        kind="protocol",
                    )
                )
                return

    def _run_shard(self, frame: Dict[str, Any], send: Any) -> None:
        task_id = frame.get("task_id")
        try:
            payload, elapsed, trace = _execute_shard(frame)
        except BaseException as exc:  # noqa: BLE001 - shipped to caller
            with self._lock:
                self.n_inflight -= 1
            send(protocol.error_frame(task_id, exc, kind="task"))
            return
        with self._lock:
            self.n_inflight -= 1
            self.tasks_done += 1
            self.busy_s += elapsed
        send(
            protocol.result_frame(
                task_id, payload, elapsed_s=elapsed, trace=trace
            )
        )
