"""Distributed multi-node execution behind the ShardPlan contract.

``repro.parallel`` ships plain picklable shards with an associative,
order-independent merge — exactly the contract a network boundary
needs. This package adds that boundary: a coordinator/worker fabric
over stdlib sockets (length-prefixed JSON frames, no new dependencies)
that dispatches the same shards to long-lived ``repro-exp worker``
nodes and merges results **bit-identical to serial regardless of which
node computed which shard**, surviving node loss by heartbeat-driven
reassignment. See ``docs/CLUSTER.md`` for the protocol, the failure
semantics, and a deployment recipe.
"""

from .backend import BackendSpec, make_pool, parse_workers
from .coordinator import ClusterPool
from .protocol import PROTOCOL_VERSION
from .worker import ClusterWorker

__all__ = [
    "BackendSpec",
    "ClusterPool",
    "ClusterWorker",
    "PROTOCOL_VERSION",
    "make_pool",
    "parse_workers",
]
