"""Wire protocol of the cluster fabric: length-prefixed JSON frames.

Every message on a coordinator↔worker connection is one **frame**: a
4-byte big-endian unsigned length followed by that many bytes of UTF-8
JSON. JSON keeps the control plane debuggable (``tcpdump`` shows readable
envelopes) while the data plane — shard functions, items, results,
exceptions — rides inside frames as base64-encoded pickle, because shards
carry arbitrary picklable model objects (workflows, platforms, NumPy
``SeedSequence``); the PR 5 ShardPlan contract already requires
picklability, so the network boundary adds no new constraint.

Frame types
-----------

==========  =======================================================
``hello``    coordinator → worker: protocol version + optional token
``welcome``  worker → coordinator: version, pid, slots, host
``shard``    coordinator → worker: one unit of work (``task_id``,
             pickled ``(fn, item)`` payload, optional trace context)
``result``   worker → coordinator: pickled return value + elapsed
             seconds + optional tracer export payload
``error``    worker → coordinator: ``kind="task"`` (the function
             raised — pickled exception, never retried) or
             ``kind="protocol"`` (handshake/frame violation)
``heartbeat``  worker → coordinator: liveness + cumulative load
``bye``      either side: orderly goodbye before close
==========  =======================================================

Trust model: pickle over a socket means **run workers only on hosts and
networks you trust** — the optional shared ``token`` in the handshake
rejects accidental cross-talk, it is not an authentication scheme. See
``docs/CLUSTER.md``.

:class:`~repro.parallel.Shard` and :class:`~repro.parallel.ShardStats`
additionally get a pure-JSON wire form (:func:`shard_to_wire`,
:func:`stats_to_wire`) so heartbeat/result summaries and external tools
can speak the protocol without unpickling anything.
"""

from __future__ import annotations

import base64
import json
import math
import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ..errors import ClusterProtocolError
from ..parallel import Shard, ShardStats

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "encode_payload",
    "decode_payload",
    "encode_exception",
    "decode_exception",
    "hello_frame",
    "welcome_frame",
    "shard_frame",
    "result_frame",
    "error_frame",
    "heartbeat_frame",
    "bye_frame",
    "check_handshake",
    "shard_to_wire",
    "shard_from_wire",
    "stats_to_wire",
    "stats_from_wire",
    "parse_address",
]

#: Bumped on any incompatible change; both ends refuse mismatches in the
#: handshake rather than mis-parsing frames mid-sweep.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's body. A shard of a paper-scale sweep is a
#: few hundred KiB of pickled workflow; 256 MiB is head-room, not a
#: target — anything larger is a protocol violation, not a big shard.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct("!I")


# ----------------------------------------------------------------------
# framing


def send_frame(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Serialise ``frame`` as JSON and write it length-prefixed."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ClusterProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` when the peer closed the connection.

    Raises :class:`~repro.errors.ClusterProtocolError` on a truncated,
    oversized, or non-JSON frame.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ClusterProtocolError("connection closed before frame body")
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ClusterProtocolError(f"frame without a type: {frame!r}")
    return frame


# ----------------------------------------------------------------------
# payload encoding (data plane)


def encode_payload(obj: Any) -> str:
    """Pickle ``obj`` and wrap it base64 for the JSON envelope."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(data: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    try:
        return pickle.loads(base64.b64decode(data.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - any unpickle failure
        raise ClusterProtocolError(f"undecodable payload: {exc}") from exc


def encode_exception(exc: BaseException) -> Dict[str, Any]:
    """Ship an exception: pickled when possible, always with metadata."""
    try:
        payload: Optional[str] = encode_payload(exc)
    except Exception:  # noqa: BLE001 - unpicklable exception state
        payload = None
    return {
        "payload": payload,
        "kind_name": type(exc).__name__,
        "message": str(exc),
    }


def decode_exception(doc: Dict[str, Any]) -> BaseException:
    """Rebuild a shipped exception, degrading to ``RuntimeError``."""
    payload = doc.get("payload")
    if payload:
        try:
            exc = decode_payload(payload)
            if isinstance(exc, BaseException):
                return exc
        except ClusterProtocolError:
            pass
    return RuntimeError(
        f"{doc.get('kind_name', 'Exception')}: {doc.get('message', '')}"
    )


# ----------------------------------------------------------------------
# frame constructors


def hello_frame(*, token: Optional[str] = None) -> Dict[str, Any]:
    """Coordinator's opening frame."""
    frame: Dict[str, Any] = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "role": "coordinator",
    }
    if token is not None:
        frame["token"] = token
    return frame


def welcome_frame(*, pid: int, slots: int, host: str) -> Dict[str, Any]:
    """Worker's handshake reply."""
    return {
        "type": "welcome",
        "version": PROTOCOL_VERSION,
        "pid": pid,
        "slots": slots,
        "host": host,
    }


def shard_frame(
    task_id: int,
    payload: str,
    *,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One unit of work: ``payload`` is ``encode_payload((fn, item))``."""
    frame: Dict[str, Any] = {
        "type": "shard",
        "task_id": task_id,
        "payload": payload,
    }
    if trace is not None:
        frame["trace"] = trace
    return frame


def result_frame(
    task_id: int,
    payload: str,
    *,
    elapsed_s: float,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A completed shard: ``payload`` is ``encode_payload(result)``."""
    frame: Dict[str, Any] = {
        "type": "result",
        "task_id": task_id,
        "payload": payload,
        "elapsed_s": elapsed_s,
    }
    if trace is not None:
        frame["trace"] = trace
    return frame


def error_frame(
    task_id: Optional[int],
    exc: BaseException,
    *,
    kind: str = "task",
) -> Dict[str, Any]:
    """A failed shard (``kind="task"``) or protocol fault."""
    return {
        "type": "error",
        "task_id": task_id,
        "kind": kind,
        "exception": encode_exception(exc),
    }


def heartbeat_frame(
    *, pid: int, tasks: int, busy_s: float, inflight: int
) -> Dict[str, Any]:
    """Periodic liveness + cumulative-load report."""
    return {
        "type": "heartbeat",
        "pid": pid,
        "tasks": tasks,
        "busy_s": busy_s,
        "inflight": inflight,
    }


def bye_frame(reason: str = "") -> Dict[str, Any]:
    """Orderly goodbye."""
    return {"type": "bye", "reason": reason}


def check_handshake(
    frame: Optional[Dict[str, Any]],
    *,
    expect: str,
    token: Optional[str] = None,
) -> Dict[str, Any]:
    """Validate the peer's handshake frame (type, version, token)."""
    if frame is None:
        raise ClusterProtocolError("peer closed during handshake")
    if frame.get("type") != expect:
        raise ClusterProtocolError(
            f"expected {expect!r} during handshake, got {frame.get('type')!r}"
        )
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if expect == "hello" and token is not None:
        if frame.get("token") != token:
            raise ClusterProtocolError("handshake token mismatch")
    return frame


# ----------------------------------------------------------------------
# pure-JSON wire forms of the ShardPlan vocabulary


def shard_to_wire(shard: Shard) -> Dict[str, int]:
    """JSON form of one contiguous shard."""
    return {"index": shard.index, "start": shard.start, "stop": shard.stop}


def shard_from_wire(doc: Dict[str, int]) -> Shard:
    """Inverse of :func:`shard_to_wire`."""
    try:
        return Shard(
            index=int(doc["index"]),
            start=int(doc["start"]),
            stop=int(doc["stop"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterProtocolError(f"bad shard document: {doc!r}") from exc


def stats_to_wire(stats: ShardStats) -> Dict[str, Any]:
    """JSON form of mergeable shard statistics.

    The empty sentinels (``minimum = +inf`` / ``maximum = -inf``) become
    ``null`` so the document is strict JSON; finite floats round-trip
    exactly (``json`` emits shortest-repr doubles).
    """
    return {
        "n": stats.n,
        "total": stats.total,
        "total_sq": stats.total_sq,
        "minimum": None if math.isinf(stats.minimum) else stats.minimum,
        "maximum": None if math.isinf(stats.maximum) else stats.maximum,
        "values": list(stats.values),
    }


def stats_from_wire(doc: Dict[str, Any]) -> ShardStats:
    """Inverse of :func:`stats_to_wire` (bit-exact for finite samples)."""
    try:
        minimum = doc["minimum"]
        maximum = doc["maximum"]
        return ShardStats(
            n=int(doc["n"]),
            total=float(doc["total"]),
            total_sq=float(doc["total_sq"]),
            minimum=math.inf if minimum is None else float(minimum),
            maximum=-math.inf if maximum is None else float(maximum),
            values=[float(v) for v in doc["values"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterProtocolError(f"bad stats document: {doc!r}") from exc


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` into a connectable pair.

    Raises :class:`~repro.errors.ClusterProtocolError` on a malformed
    spec — the caller (``parse_workers``) wraps this into its own typed
    configuration error with the full node list for context.
    """
    host, sep, port_text = spec.strip().rpartition(":")
    if not sep or not host:
        raise ClusterProtocolError(
            f"node spec {spec!r} is not host:port"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ClusterProtocolError(
            f"node spec {spec!r} has a non-numeric port"
        ) from exc
    # Port 0 is legal on the bind side ("pick a free port"); a
    # coordinator pointed at :0 fails at connect with a clear error.
    if not 0 <= port < 65536:
        raise ClusterProtocolError(
            f"node spec {spec!r} has an out-of-range port"
        )
    return host, port
