"""Deterministic random-number management.

Every stochastic component of the library (workflow generators, weight
sampling, experiment repetitions) draws from a :class:`numpy.random.Generator`
spawned from a single root seed, so that

* any experiment is reproducible from one integer seed, and
* independent components get *independent* streams (no accidental overlap),
  via :func:`numpy.random.SeedSequence.spawn`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

__all__ = ["RngLike", "as_generator", "spawn", "spawn_seeds", "stream"]

RngLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new PCG64 stream; an existing
    generator is returned as-is.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(int(rng))


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    When ``rng`` is already a generator, children are derived from its bit
    generator's seed sequence when available, falling back to jumped streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(rng, np.random.Generator):
        seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in rng.spawn(n)]
    root = np.random.SeedSequence(rng if rng is not None else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def spawn_seeds(rng: RngLike, n: int) -> list[np.random.SeedSequence]:
    """The seed sequences behind :func:`spawn`, without building generators.

    ``spawn(rng, n)`` is exactly ``[np.random.default_rng(s) for s in
    spawn_seeds(rng, n)]`` — both advance the parent's spawn counter the
    same way, so a caller may take either path and land on identical
    streams. The seed sequences themselves are small and picklable, which
    is what lets :mod:`repro.parallel` ship per-replication substreams to
    worker processes and still merge results bit-identical to the serial
    run.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    if isinstance(rng, np.random.Generator):
        seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        return seed_seq.spawn(n)
    if isinstance(rng, np.random.SeedSequence):
        return rng.spawn(n)
    root = np.random.SeedSequence(rng if rng is not None else None)
    return root.spawn(n)


def stream(rng: RngLike) -> Iterator[np.random.Generator]:
    """Infinite iterator of independent generators derived from ``rng``."""
    if isinstance(rng, np.random.Generator):
        seed_seq: Optional[np.random.SeedSequence]
        seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(rng, np.random.SeedSequence):
        seed_seq = rng
    else:
        seed_seq = np.random.SeedSequence(rng if rng is not None else None)
    while True:
        (child,) = seed_seq.spawn(1)
        yield np.random.default_rng(child)
