"""High-level planning advisor: satisfy Eq. (3) at a chosen confidence.

The paper's objective — "fulfill the deadline while respecting the budget"
(Eq. 3) — is a *satisfaction* problem the user faces before submitting a
workflow: how much money buys a makespan distribution that meets my
deadline with, say, 95% probability? :func:`recommend` answers it by
walking the budget axis with a budget-aware scheduler and Monte-Carlo
checking each candidate schedule against the joint objective, returning the
cheapest plan that qualifies (or the best-effort plan with its achieved
probability when none does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .errors import SchedulingError
from .experiments.budgets import budget_grid
from .experiments.risk import RiskAssessment, assess
from .platform.cloud import CloudPlatform
from .rng import RngLike, spawn
from .scheduling.registry import make_scheduler
from .scheduling.schedule import Schedule
from .workflow.dag import Workflow

__all__ = ["PlanRecommendation", "recommend"]


@dataclass(frozen=True)
class PlanRecommendation:
    """The advisor's verdict.

    ``feasible`` tells whether the joint objective is met at the requested
    confidence; when ``False`` the returned plan is the best-probability
    one found, and ``risk`` carries its achieved numbers.
    """

    schedule: Schedule
    budget: float
    deadline: float
    confidence: float
    feasible: bool
    risk: RiskAssessment
    algorithm: str

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "MEETS" if self.feasible else "best effort, MISSES"
        return (
            f"{verdict} (D={self.deadline:.0f}s, B=${self.budget:.3f}) at "
            f"{self.risk.p_meets_objective:.1%} joint probability "
            f"[target {self.confidence:.0%}, {self.algorithm}]"
        )


def recommend(
    wf: Workflow,
    platform: CloudPlatform,
    deadline: float,
    *,
    confidence: float = 0.95,
    algorithm: str = "heft_budg",
    budgets: Optional[Sequence[float]] = None,
    n_budget_points: int = 8,
    n_samples: int = 120,
    rng: RngLike = None,
) -> PlanRecommendation:
    """Find the cheapest budget meeting ``deadline`` at ``confidence``.

    Candidate budgets default to the workflow's own ``B_min``-to-high grid.
    Each candidate is scheduled once and assessed by Monte-Carlo
    (``n_samples`` weight realizations); candidates are tried cheapest
    first and the first qualifying plan is returned.
    """
    if not 0.0 < confidence <= 1.0:
        raise SchedulingError(f"confidence must be in (0,1], got {confidence}")
    if deadline <= 0.0:
        raise SchedulingError(f"deadline must be > 0, got {deadline}")
    wf.freeze()
    grid = sorted(budgets) if budgets else budget_grid(
        wf, platform, n_budget_points
    )
    scheduler = make_scheduler(algorithm)

    best: Optional[PlanRecommendation] = None
    for budget, stream in zip(grid, spawn(rng, len(grid))):
        schedule = scheduler.schedule(wf, platform, budget).schedule
        risk = assess(
            wf, platform, schedule,
            deadline=deadline, budget=budget,
            n_samples=n_samples, rng=stream,
        )
        plan = PlanRecommendation(
            schedule=schedule,
            budget=budget,
            deadline=deadline,
            confidence=confidence,
            feasible=risk.p_meets_objective >= confidence,
            risk=risk,
            algorithm=algorithm,
        )
        if plan.feasible:
            return plan
        if best is None or (
            plan.risk.p_meets_objective > best.risk.p_meets_objective
        ):
            best = plan
    assert best is not None  # grid is non-empty
    return best
