"""Spec-family batching: merge near-identical requests into one compute.

PR 4's coalescer collapsed *identical* requests (same fingerprint) into a
single in-flight computation. This module generalizes it one level up:
requests in the same **spec family** — equal modulo ``evaluation.seed``,
``evaluation.n_reps``, tenant and priority
(:meth:`~repro.service.spec.ScheduleRequest.family_key`) — share the
expensive part, the *schedule*, computed once per family, while their
evaluation replications are computed per **seed** and cached, following
the PR 5 shard-plan contract: replication ``i`` of a request depends only
on ``evaluation.seed + i``, never on ``n_reps`` or neighbours. Two
requests asking for overlapping seed ranges therefore share every
overlapping replication bit-for-bit, and a batched response is
byte-identical to its unbatched equivalent (the wall-clock ``elapsed_s``
field excepted, by definition).

The batcher itself is pure orchestration — it owns two single-flight
:class:`~repro.service.cache.LRUCache` layers (family → base bundle,
``(family, seed)`` → replication record) and three caller-supplied
callables:

``compute_base(request)``
    Resolve + schedule once for the whole family; returns an opaque
    bundle (the engine packs workflow/platform/schedule/budget plus the
    response template).
``compute_rep(base, seed)``
    One evaluation replication from the bundle; must be a pure function
    of ``(family, seed)``.
``assemble(base, reps, request)``
    Fold the bundle and this request's replication list into the final
    response.

Keeping the callables outside means the engine depends on the batcher,
not the other way around, and the batcher is testable with toy
functions.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List

from ..service.cache import LRUCache
from ..service.spec import ScheduleRequest

__all__ = ["FamilyBatcher"]


class FamilyBatcher:
    """Two-level single-flight batching over spec families (thread-safe).

    Parameters
    ----------
    compute_base, compute_rep, assemble:
        The three compute callables (see the module docstring).
    max_families:
        Base-bundle cache capacity (a bundle holds a resolved workflow
        and schedule — heavier than a response, so keep this modest).
    max_reps:
        Replication-record cache capacity (records are small dicts).
    clock:
        Monotonic seconds source for the caches; injectable for tests.
    """

    def __init__(
        self,
        compute_base: Callable[[ScheduleRequest], Any],
        compute_rep: Callable[[Any, int], Dict[str, Any]],
        assemble: Callable[[Any, List[Dict[str, Any]], ScheduleRequest], Any],
        *,
        max_families: int = 64,
        max_reps: int = 8192,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._compute_base = compute_base
        self._compute_rep = compute_rep
        self._assemble = assemble
        self._bases = LRUCache(max_families, clock=clock)
        self._reps = LRUCache(max_reps, clock=clock)
        self._lock = threading.Lock()
        self._requests = 0
        self._batched = 0
        self._reps_shared = 0
        self._reps_computed = 0

    def compute(self, request: ScheduleRequest) -> Any:
        """Serve ``request`` through the family/seed caches.

        The schedule is computed at most once per family (concurrent
        first requests coalesce single-flight), each replication at most
        once per ``(family, seed)``; the per-request response is then
        assembled from shared parts.
        """
        family = request.family_key()
        base, base_shared = self._bases.get_or_compute(
            family, lambda: self._compute_base(request)
        )
        spec = request.evaluation
        reps: List[Dict[str, Any]] = []
        shared = 0
        for i in range(spec.n_reps):
            seed = spec.seed + i
            rep, was_cached = self._reps.get_or_compute(
                (family, seed), lambda s=seed: self._compute_rep(base, s)
            )
            shared += was_cached
            reps.append(rep)
        with self._lock:
            self._requests += 1
            self._batched += base_shared
            self._reps_shared += shared
            self._reps_computed += spec.n_reps - shared
        return self._assemble(base, reps, request)

    def served_batched(self, request: ScheduleRequest) -> bool:
        """Whether this request's family base already exists (peek only)."""
        return self._bases.get(request.family_key(), touch=False) is not None

    def clear(self) -> None:
        """Drop all cached bases and replications (counters kept)."""
        self._bases.clear()
        self._reps.clear()

    def stats(self) -> Dict[str, Any]:
        """JSON-ready batching statistics (for ``/v1/admission``).

        ``batched`` counts requests that *reused* a family base computed
        for an earlier request — the work the batcher saved.
        """
        with self._lock:
            out = {
                "requests": self._requests,
                "batched": self._batched,
                "reps_shared": self._reps_shared,
                "reps_computed": self._reps_computed,
            }
        out["families_cached"] = len(self._bases)
        out["reps_cached"] = len(self._reps)
        return out
