"""Multi-tenant budget-aware admission control for the scheduling service.

The paper's thesis — spend a fixed budget wisely under uncertainty — is
applied here to the service's *own* traffic: every request is priced
before it runs (:mod:`~repro.admission.estimator`), charged against its
tenant's simulated-dollar budget window and rate/concurrency limits
(:mod:`~repro.admission.tenants`), queued by priority class with weighted
fair sharing and starvation aging (:mod:`~repro.admission.queue`), and —
when near-identical to other traffic — batched into a shared computation
(:mod:`~repro.admission.batcher`). The
:class:`~repro.admission.controller.AdmissionController` chains the gates
and settles the accounting when runs finish.

See ``docs/ADMISSION.md`` for the tenants-file format, priority
semantics, and estimator calibration.
"""

from .batcher import FamilyBatcher
from .controller import AdmissionController, AdmissionDecision
from .estimator import CostEstimator, Estimate, estimate_error_report
from .queue import AdmissionQueue, QueuedEntry
from .tenants import TenantPolicy, TenantRegistry, TenantState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionQueue",
    "QueuedEntry",
    "CostEstimator",
    "Estimate",
    "estimate_error_report",
    "FamilyBatcher",
    "TenantPolicy",
    "TenantRegistry",
    "TenantState",
]
