"""Pre-admission cost/duration estimator for :class:`ScheduleRequest`.

The admission gate needs a price *before* running anything: how many
simulated dollars will this request's schedule commit, and roughly how
long will the service compute it? :class:`CostEstimator` answers in three
tiers, best first:

``observed``
    An exponentially-weighted moving average over this process's own
    reconciled runs, keyed by the request's *spec family*
    (:meth:`ScheduleRequest.family_key`). Schedules are deterministic
    given the spec, so after one observation a repeat request is priced
    **exactly** — which is what makes the never-overspend CI invariant
    exact rather than probabilistic.
``ledger``
    Historical ``planned_cost`` / ``elapsed_s`` rows from the run ledger
    (exact fingerprint first, then the ``family/n_tasks/algorithm``
    group), so a freshly restarted service inherits calibration from its
    archive.
``analytic``
    A cold-start prior from the spec alone: a declared budget is taken as
    the spend ceiling (the paper's algorithms spend *up to* the budget,
    so this never underestimates), and duration scales with task count
    and replication count. Deliberately coarse — it exists to be
    replaced by the first reconciliation.

Every finished run flows back through :meth:`CostEstimator.observe`,
which updates the EWMA table and returns the relative errors that the
engine archives in the ledger row (``extra["admission"]``) — the raw
material of ``repro-exp ledger estimate-error``
(:func:`estimate_error_report`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..service.spec import ScheduleRequest

__all__ = ["Estimate", "CostEstimator", "estimate_error_report"]

#: EWMA weight of the newest observation. Deterministic specs re-observe
#: the same numbers so any alpha is exact for them; for specs whose
#: duration drifts (machine load), the high alpha tracks recency.
EWMA_ALPHA = 0.5

#: Cold-start duration prior: seconds of scheduler work per task (the
#: list-scheduling algorithms are near-quadratic, softened to ^1.5 here)
#: and seconds of simulator work per (replication × task).
_SCHED_COEF = 2e-5
_REP_COEF = 2e-5

#: Cold-start cost prior for budget-axis requests: assumed mean task
#: compute time in hours on the cheapest category (order of magnitude of
#: the paper's generator families).
_NOMINAL_TASK_HOURS = 0.05


@dataclass(frozen=True)
class Estimate:
    """One pre-admission price: cost ($ simulated), duration (wall s).

    ``source`` names the tier that produced it (``observed`` / ``ledger``
    / ``analytic``); ``key`` is the spec-family key the estimate is
    reconciled under.
    """

    cost: float
    duration_s: float
    source: str
    key: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for ledger rows and admission events)."""
        return {
            "cost": self.cost,
            "duration_s": self.duration_s,
            "source": self.source,
        }


class CostEstimator:
    """Tiered request pricer with run-to-run reconciliation (thread-safe).

    Parameters
    ----------
    ledger:
        Optional run ledger queried for historical calibration rows; any
        object with the :class:`~repro.obs.ledger.RunLedger` read API
        (the :class:`~repro.obs.ledger.NullLedger` works and yields the
        analytic tier).
    """

    def __init__(self, ledger: Optional[Any] = None) -> None:
        self._ledger = ledger
        self._lock = threading.Lock()
        # family_key -> EWMA planned cost
        self._cost: Dict[str, float] = {}
        # (family_key, n_reps) -> EWMA wall duration
        self._duration: Dict[Tuple[str, int], float] = {}
        # per-algorithm reconciliation samples: (|rel cost err|, |rel dur err|)
        self._errors: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    def estimate(self, request: ScheduleRequest) -> Estimate:
        """Price ``request`` without computing it (best available tier)."""
        key = request.family_key()
        n_reps = request.evaluation.n_reps
        with self._lock:
            cost = self._cost.get(key)
            duration = self._duration.get((key, n_reps))
        if cost is not None:
            if duration is None:
                duration = self._analytic_duration(request)
            return Estimate(cost, duration, "observed", key)
        ledger_est = self._from_ledger(request)
        if ledger_est is not None:
            return Estimate(ledger_est[0], ledger_est[1], "ledger", key)
        return Estimate(
            self._analytic_cost(request),
            self._analytic_duration(request),
            "analytic",
            key,
        )

    def observe(
        self,
        request: ScheduleRequest,
        estimate: Estimate,
        *,
        actual_cost: float,
        actual_duration_s: float,
    ) -> Dict[str, Any]:
        """Reconcile ``estimate`` against the finished run.

        Updates the EWMA tables and returns the admission diagnostics the
        engine stores in the ledger row: the estimate itself plus signed
        relative errors (``(estimated - actual) / actual``; ``None`` when
        the actual value is zero).
        """
        key = estimate.key
        n_reps = request.evaluation.n_reps
        with self._lock:
            prev_cost = self._cost.get(key)
            self._cost[key] = (
                actual_cost if prev_cost is None
                else prev_cost + EWMA_ALPHA * (actual_cost - prev_cost)
            )
            prev_dur = self._duration.get((key, n_reps))
            self._duration[(key, n_reps)] = (
                actual_duration_s if prev_dur is None
                else prev_dur + EWMA_ALPHA * (actual_duration_s - prev_dur)
            )
            cost_err = (
                (estimate.cost - actual_cost) / actual_cost
                if actual_cost > 0.0 else None
            )
            dur_err = (
                (estimate.duration_s - actual_duration_s) / actual_duration_s
                if actual_duration_s > 0.0 else None
            )
            samples = self._errors.setdefault(request.algorithm.lower(), [])
            samples.append(
                (
                    abs(cost_err) if cost_err is not None else 0.0,
                    abs(dur_err) if dur_err is not None else 0.0,
                )
            )
            del samples[:-500]  # bounded memory per algorithm
        out = estimate.to_dict()
        out["cost_rel_error"] = cost_err
        out["duration_rel_error"] = dur_err
        return out

    def accuracy(self) -> Dict[str, Dict[str, float]]:
        """Per-algorithm mean absolute relative error of past estimates."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for algorithm, samples in sorted(self._errors.items()):
                n = len(samples)
                out[algorithm] = {
                    "n": float(n),
                    "cost_mare": sum(s[0] for s in samples) / n,
                    "duration_mare": sum(s[1] for s in samples) / n,
                }
            return out

    # ------------------------------------------------------------------
    # calibration tiers
    # ------------------------------------------------------------------
    def _from_ledger(
        self, request: ScheduleRequest
    ) -> Optional[Tuple[float, float]]:
        """``(cost, duration)`` from archived runs, or ``None``."""
        ledger = self._ledger
        if ledger is None or not getattr(ledger, "enabled", False):
            return None
        try:
            rows = ledger.runs(fingerprint=request.fingerprint(), limit=5)
            if not rows:
                wf = request.workflow
                rows = [
                    r for r in ledger.runs(
                        workflow=(wf.family or wf.name or ""),
                        algorithm=request.algorithm.lower(),
                        limit=25,
                    )
                    if wf.family is None or r.n_tasks == wf.n_tasks
                ][:5]
        except Exception:
            return None  # a broken archive must never block admission
        if not rows:
            return None
        cost = sum(r.planned_cost for r in rows) / len(rows)
        duration = sum(max(r.elapsed_s, r.sched_seconds) for r in rows) / len(rows)
        return cost, max(duration, 0.0)

    def _analytic_cost(self, request: ScheduleRequest) -> float:
        """Cold-start cost prior (never *under*-estimates a declared budget)."""
        if request.budget.amount is not None:
            # Budget-aware algorithms spend at most the budget; admitting
            # against the ceiling is conservative.
            return request.budget.amount
        # Budget-axis mode: scale a nominal per-task rental between the
        # cheapest-possible (position 0) and a generous multiple.
        n_tasks = max(request.workflow.n_tasks, 1)
        try:
            platform = request.platform.resolve()
            hourly = platform.cheapest.hourly_cost
        except Exception:
            hourly = 0.05
        position = request.budget.position or 0.0
        return n_tasks * _NOMINAL_TASK_HOURS * hourly * (1.0 + 3.0 * position)

    def _analytic_duration(self, request: ScheduleRequest) -> float:
        """Cold-start wall-clock prior: scheduling + replication terms."""
        n_tasks = max(request.workflow.n_tasks, 1)
        n_reps = request.evaluation.n_reps
        return _SCHED_COEF * n_tasks ** 1.5 + _REP_COEF * n_reps * n_tasks


def estimate_error_report(
    ledger: Any, *, since: Optional[float] = None, limit: int = 0
) -> Dict[str, Dict[str, Any]]:
    """Estimation accuracy per algorithm family, from archived runs.

    Scans ledger rows whose ``extra["admission"]`` carries reconciled
    estimates (written by the service engine) and aggregates, per
    ``algorithm``: row count, mean absolute relative error and worst
    signed error for cost and duration, and the mix of estimate sources.
    Backs the ``repro-exp ledger estimate-error`` subcommand.
    """
    groups: Dict[str, Dict[str, Any]] = {}
    for row in ledger.runs(since=since, limit=limit):
        admission = row.extra.get("admission")
        if not isinstance(admission, dict):
            continue
        group = groups.setdefault(
            row.algorithm or "?",
            {
                "n": 0,
                "cost_errors": [],
                "duration_errors": [],
                "sources": {},
            },
        )
        group["n"] += 1
        source = str(admission.get("source", "?"))
        group["sources"][source] = group["sources"].get(source, 0) + 1
        for field_name, bucket in (
            ("cost_rel_error", "cost_errors"),
            ("duration_rel_error", "duration_errors"),
        ):
            value = admission.get(field_name)
            if isinstance(value, (int, float)):
                group[bucket].append(float(value))
    out: Dict[str, Dict[str, Any]] = {}
    for algorithm, group in sorted(groups.items()):
        entry: Dict[str, Any] = {
            "n": group["n"],
            "sources": dict(sorted(group["sources"].items())),
        }
        for bucket, prefix in (
            ("cost_errors", "cost"),
            ("duration_errors", "duration"),
        ):
            errors = group[bucket]
            if errors:
                entry[f"{prefix}_mare"] = (
                    sum(abs(e) for e in errors) / len(errors)
                )
                entry[f"{prefix}_worst"] = max(errors, key=abs)
        out[algorithm] = entry
    return out
