"""Per-tenant admission policies and live accounting state.

A :class:`TenantPolicy` is the declarative half: how fast a tenant may
submit (token-bucket rate + burst), how many of its jobs may run at once,
how many simulated dollars it may spend per refill window, and how much
weight it carries in fair-share ordering. A :class:`TenantRegistry` pairs
each policy with a :class:`TenantState` — the mutable half: current
bucket fill, window spend, reserved (in-flight) estimates, running count.

The registry is deliberately permissive by default: unknown tenants fall
back to the ``default`` policy (unlimited unless configured otherwise),
so a service without a tenants file behaves exactly like the
pre-admission service. Load real policies from JSON with
:meth:`TenantRegistry.from_json` (``repro-exp serve --tenants
tenants.json``)::

    {
      "default": {"rate": 50, "burst": 100},
      "tenants": {
        "team-a": {"rate": 10, "burst": 20, "max_concurrent": 4,
                   "cost_budget": 25.0, "budget_window_s": 3600,
                   "weight": 2.0},
        "team-b": {"cost_budget": 5.0}
      }
    }

The clock is injectable (monotonic seconds) so bucket refills and budget
windows are testable without sleeping. All mutation happens under one
registry lock — admission decisions are cheap (a handful of float ops),
so a single lock does not serialize anything that matters.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import ServiceError

__all__ = ["TenantPolicy", "TenantState", "TenantRegistry"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


@dataclass(frozen=True)
class TenantPolicy:
    """Declarative admission policy of one tenant.

    ``None`` means *unlimited* for every limit field. ``rate`` is
    requests per second flowing into a token bucket of capacity
    ``burst`` (defaulting to ``max(1, 2·rate)``); ``cost_budget`` is the
    simulated-dollar spend allowed per ``budget_window_s`` rolling-reset
    window; ``max_concurrent`` caps simultaneously *running* jobs;
    ``weight`` scales the tenant's share in weighted fair queueing.
    """

    name: str = "default"
    rate: Optional[float] = None
    burst: Optional[float] = None
    max_concurrent: Optional[int] = None
    cost_budget: Optional[float] = None
    budget_window_s: float = 3600.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "tenant policy needs a non-empty name")
        if self.rate is not None:
            _require(
                math.isfinite(self.rate) and self.rate > 0,
                f"tenant {self.name!r}: rate must be > 0, got {self.rate}",
            )
        if self.burst is not None:
            _require(
                math.isfinite(self.burst) and self.burst >= 1,
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}",
            )
        if self.max_concurrent is not None:
            _require(
                self.max_concurrent >= 1,
                f"tenant {self.name!r}: max_concurrent must be >= 1, "
                f"got {self.max_concurrent}",
            )
        if self.cost_budget is not None:
            _require(
                math.isfinite(self.cost_budget) and self.cost_budget > 0,
                f"tenant {self.name!r}: cost_budget must be > 0, "
                f"got {self.cost_budget}",
            )
        _require(
            math.isfinite(self.budget_window_s) and self.budget_window_s > 0,
            f"tenant {self.name!r}: budget_window_s must be > 0, "
            f"got {self.budget_window_s}",
        )
        _require(
            math.isfinite(self.weight) and self.weight > 0,
            f"tenant {self.name!r}: weight must be > 0, got {self.weight}",
        )

    @property
    def bucket_capacity(self) -> float:
        """Token-bucket capacity: explicit ``burst`` or ``max(1, 2·rate)``."""
        if self.burst is not None:
            return self.burst
        if self.rate is None:
            return math.inf
        return max(1.0, 2.0 * self.rate)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        out: Dict[str, Any] = {"name": self.name}
        for key in ("rate", "burst", "max_concurrent", "cost_budget"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.budget_window_s != 3600.0:
            out["budget_window_s"] = self.budget_window_s
        if self.weight != 1.0:
            out["weight"] = self.weight
        return out

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "TenantPolicy":
        """Decode one policy; unknown fields are rejected by name."""
        _require(
            isinstance(data, Mapping),
            f"tenant {name!r} policy must be a JSON object",
        )
        unknown = set(data) - {
            "name", "rate", "burst", "max_concurrent", "cost_budget",
            "budget_window_s", "weight",
        }
        _require(
            not unknown,
            f"tenant {name!r}: unknown policy fields {sorted(unknown)}",
        )
        raw_mc = data.get("max_concurrent")
        return cls(
            name=name,
            rate=None if data.get("rate") is None else float(data["rate"]),
            burst=None if data.get("burst") is None else float(data["burst"]),
            max_concurrent=None if raw_mc is None else int(raw_mc),
            cost_budget=(
                None if data.get("cost_budget") is None
                else float(data["cost_budget"])
            ),
            budget_window_s=float(data.get("budget_window_s", 3600.0)),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass
class TenantState:
    """Mutable accounting of one tenant (owned by the registry's lock).

    ``spent`` is the committed simulated spend in the current budget
    window; ``reserved`` holds the estimates of admitted-but-unfinished
    requests (refunded or converted to actual spend on completion), so
    the admission gate projects ``spent + reserved + estimate`` and a
    burst of concurrent admissions cannot collectively overshoot.
    """

    tokens: float = math.inf
    last_refill: float = 0.0
    window_start: float = 0.0
    spent: float = 0.0
    reserved: float = 0.0
    running: int = 0
    served: float = 0.0
    admitted: int = 0
    completed: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)

    def snapshot(self, policy: TenantPolicy) -> Dict[str, Any]:
        """JSON-ready live view, paired with the policy's limits."""
        budget = policy.cost_budget
        return {
            "policy": policy.to_dict(),
            "tokens": None if math.isinf(self.tokens) else self.tokens,
            "running": self.running,
            "spent_window": self.spent,
            "reserved": self.reserved,
            "budget_remaining": (
                None if budget is None
                else max(budget - self.spent - self.reserved, 0.0)
            ),
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": dict(self.rejected),
        }


class TenantRegistry:
    """All tenant policies plus their live accounting (thread-safe).

    Parameters
    ----------
    policies:
        Mapping of tenant name to :class:`TenantPolicy`. Tenants not in
        the mapping are governed by ``default_policy`` (each still gets
        its *own* state, so fair sharing and accounting stay per-tenant).
    default_policy:
        Policy applied to unnamed tenants; the permissive all-``None``
        policy unless configured.
    clock:
        Monotonic seconds source; injectable for tests.
    """

    def __init__(
        self,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        *,
        default_policy: Optional[TenantPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.default_policy = (
            default_policy if default_policy is not None else TenantPolicy()
        )
        self._policies: Dict[str, TenantPolicy] = dict(policies or {})
        self._states: Dict[str, TenantState] = {}

    # ------------------------------------------------------------------
    # construction from JSON
    # ------------------------------------------------------------------
    @classmethod
    def from_json(
        cls,
        document: Mapping[str, Any],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "TenantRegistry":
        """Build a registry from a ``{"default": ..., "tenants": ...}`` doc.

        ``tenants`` maps tenant names to policy objects; a top-level
        ``default`` object overrides the permissive default policy.
        """
        _require(
            isinstance(document, Mapping),
            "tenants document must be a JSON object",
        )
        unknown = set(document) - {"default", "tenants"}
        _require(
            not unknown,
            f"unknown tenants document fields: {sorted(unknown)}",
        )
        default = TenantPolicy()
        if "default" in document:
            default = TenantPolicy.from_dict("default", document["default"])
        tenants = document.get("tenants", {})
        _require(
            isinstance(tenants, Mapping),
            "'tenants' must map tenant names to policy objects",
        )
        policies = {
            str(name): TenantPolicy.from_dict(str(name), spec)
            for name, spec in tenants.items()
        }
        return cls(policies, default_policy=default, clock=clock)

    @classmethod
    def from_json_file(
        cls,
        path: str,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "TenantRegistry":
        """Load :meth:`from_json` from a file, with readable errors."""
        try:
            with open(path) as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"cannot load tenants file {path!r}: {exc}") from exc
        return cls.from_json(document, clock=clock)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def policy(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (the default one, renamed, when unlisted)."""
        with self._lock:
            return self._policy_locked(tenant)

    def _policy_locked(self, tenant: str) -> TenantPolicy:
        found = self._policies.get(tenant)
        if found is None:
            found = replace(self.default_policy, name=tenant)
            self._policies[tenant] = found
        return found

    def _state_locked(self, tenant: str) -> Tuple[TenantPolicy, TenantState]:
        policy = self._policy_locked(tenant)
        state = self._states.get(tenant)
        now = self._clock()
        if state is None:
            state = TenantState(
                tokens=policy.bucket_capacity,
                last_refill=now,
                window_start=now,
            )
            self._states[tenant] = state
        self._refill_locked(policy, state, now)
        return policy, state

    def _refill_locked(
        self, policy: TenantPolicy, state: TenantState, now: float
    ) -> None:
        """Advance the token bucket and roll the budget window."""
        if policy.rate is not None:
            elapsed = max(now - state.last_refill, 0.0)
            state.tokens = min(
                state.tokens + elapsed * policy.rate, policy.bucket_capacity
            )
        state.last_refill = now
        if now - state.window_start >= policy.budget_window_s:
            # Whole windows elapsed: spend resets, reservations persist
            # (they belong to still-running work).
            windows = math.floor(
                (now - state.window_start) / policy.budget_window_s
            )
            state.window_start += windows * policy.budget_window_s
            state.spent = 0.0

    # ------------------------------------------------------------------
    # admission gates (called by the controller)
    # ------------------------------------------------------------------
    def try_rate(self, tenant: str) -> Tuple[bool, float]:
        """Take one token; ``(ok, retry_after_s)``.

        ``retry_after_s`` is how long until the bucket holds a full token
        again (0 when the take succeeded or the tenant is unlimited).
        """
        with self._lock:
            policy, state = self._state_locked(tenant)
            if policy.rate is None:
                return True, 0.0
            if state.tokens >= 1.0:
                state.tokens -= 1.0
                return True, 0.0
            state.rejected["rate_limited"] = (
                state.rejected.get("rate_limited", 0) + 1
            )
            return False, (1.0 - state.tokens) / policy.rate

    def try_reserve(self, tenant: str, estimated_cost: float) -> Tuple[bool, float]:
        """Reserve ``estimated_cost`` against the window budget.

        ``(ok, retry_after_s)``; on refusal ``retry_after_s`` is the time
        until the current budget window resets.
        """
        with self._lock:
            policy, state = self._state_locked(tenant)
            if policy.cost_budget is not None:
                projected = state.spent + state.reserved + estimated_cost
                if projected > policy.cost_budget:
                    state.rejected["budget_exhausted"] = (
                        state.rejected.get("budget_exhausted", 0) + 1
                    )
                    remaining = policy.budget_window_s - (
                        self._clock() - state.window_start
                    )
                    return False, max(remaining, 0.0)
            state.reserved += estimated_cost
            state.admitted += 1
            return True, 0.0

    def commit(self, tenant: str, estimated_cost: float, actual_cost: float) -> None:
        """Convert a reservation into committed spend (on completion)."""
        with self._lock:
            _, state = self._state_locked(tenant)
            state.reserved = max(state.reserved - estimated_cost, 0.0)
            state.spent += max(actual_cost, 0.0)
            state.completed += 1

    def release(self, tenant: str, estimated_cost: float) -> None:
        """Refund a reservation (cancelled / failed before completion)."""
        with self._lock:
            _, state = self._state_locked(tenant)
            state.reserved = max(state.reserved - estimated_cost, 0.0)

    # ------------------------------------------------------------------
    # concurrency slots + fair-share bookkeeping
    # ------------------------------------------------------------------
    def can_run(self, tenant: str) -> bool:
        """True when the tenant is under its concurrent-job cap."""
        with self._lock:
            policy, state = self._state_locked(tenant)
            return (
                policy.max_concurrent is None
                or state.running < policy.max_concurrent
            )

    def acquire_slot(self, tenant: str) -> bool:
        """Claim one running slot; False when the cap is already reached."""
        with self._lock:
            policy, state = self._state_locked(tenant)
            if (
                policy.max_concurrent is not None
                and state.running >= policy.max_concurrent
            ):
                return False
            state.running += 1
            state.served += 1.0 / policy.weight
            return True

    def release_slot(self, tenant: str) -> None:
        """Return a running slot."""
        with self._lock:
            _, state = self._state_locked(tenant)
            state.running = max(state.running - 1, 0)

    def virtual_time(self, tenant: str) -> float:
        """Weighted service received so far (fair queueing sort key)."""
        with self._lock:
            _, state = self._state_locked(tenant)
            return state.served

    def note_rejected(self, tenant: str, reason: str) -> None:
        """Count a refusal decided outside the registry (e.g. queue_full)."""
        with self._lock:
            _, state = self._state_locked(tenant)
            state.rejected[reason] = state.rejected.get(reason, 0) + 1

    # ------------------------------------------------------------------
    def spent_window(self, tenant: str) -> float:
        """Committed spend of the tenant's current budget window."""
        with self._lock:
            _, state = self._state_locked(tenant)
            return state.spent

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every known tenant (for ``/v1/tenants``)."""
        with self._lock:
            now = self._clock()
            out: Dict[str, Any] = {
                "default_policy": self.default_policy.to_dict(),
                "tenants": {},
            }
            for name in sorted(set(self._policies) | set(self._states)):
                policy = self._policy_locked(name)
                state = self._states.get(name)
                if state is None:
                    out["tenants"][name] = {"policy": policy.to_dict()}
                    continue
                self._refill_locked(policy, state, now)
                out["tenants"][name] = state.snapshot(policy)
            return out
