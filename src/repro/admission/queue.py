"""Priority admission queue: classes, weighted fair sharing, aging.

Replaces the engine's FIFO backpressure path. Entries carry a priority
class (``interactive`` > ``batch`` > ``best_effort``) and a tenant; a
dispatcher thread asks :meth:`AdmissionQueue.pop` for the best entry
whose tenant is currently *eligible* (under its concurrency cap) and the
queue picks by, in order:

1. **Effective priority** — the class rank minus one step per
   ``aging_s`` seconds waited, so a ``best_effort`` job that has waited
   long enough competes as ``batch`` and eventually as ``interactive``
   (starvation aging: max wait is bounded by ``2·aging_s`` plus service
   time of the jobs ahead in the top class).
2. **Weighted fair share** — among equal effective priority, the tenant
   with the least weighted service so far (``pops / weight``) goes
   first, so a weight-2 tenant drains twice the jobs of a weight-1
   tenant under contention, and a newly-arrived tenant is not locked out
   by an established one's backlog.
3. **Arrival order** — FIFO within a tenant.

``pop`` blocks while the queue holds only ineligible entries (every
waiter is re-checked on :meth:`notify`, which the engine calls when a
running job finishes and frees a concurrency slot) and returns ``None``
once the queue is empty — the dispatcher-per-entry contract: the engine
submits exactly one dispatcher per accepted entry, so dispatchers whose
entry was cancelled drain a ``None`` and exit.

The queue never *admits* — :meth:`push` only enforces capacity
(``queue_full``); rate and budget gates live in
:class:`~repro.admission.controller.AdmissionController`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import AdmissionRejected
from ..service.spec import DEFAULT_PRIORITY, DEFAULT_TENANT, PRIORITIES

__all__ = ["QueuedEntry", "AdmissionQueue"]

_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


@dataclass
class QueuedEntry:
    """One admitted-but-not-yet-running job waiting in the queue."""

    job_id: str
    tenant: str = DEFAULT_TENANT
    priority: str = DEFAULT_PRIORITY
    estimated_cost: float = 0.0
    enqueued_at: float = 0.0
    seq: int = 0
    payload: Any = None
    #: Stamped by the queue at pop time (its own clock): seconds this
    #: entry spent queued. The engine surfaces it on ``job.started``
    #: events next to the coarser ``queued`` stage mark.
    waited_s: float = 0.0

    def effective_rank(self, now: float, aging_s: float) -> int:
        """Class rank after starvation aging (lower serves first)."""
        promoted = int(max(now - self.enqueued_at, 0.0) / aging_s)
        return max(_RANK[self.priority] - promoted, 0)


@dataclass
class _QueueStats:
    """Internal counters surfaced by :meth:`AdmissionQueue.stats`."""

    pushed: int = 0
    popped: int = 0
    removed: int = 0
    promoted_pops: int = 0
    max_wait_s: float = 0.0
    total_wait_s: float = 0.0


class AdmissionQueue:
    """Bounded priority queue with fair sharing and aging (thread-safe).

    Parameters
    ----------
    max_depth:
        Capacity; :meth:`push` beyond it raises
        :class:`~repro.errors.AdmissionRejected` (``queue_full``).
        ``None`` means unbounded.
    aging_s:
        Seconds of waiting per one-class starvation promotion.
    weight_of:
        Tenant fair-share weight lookup (defaults to 1.0 for everyone).
    clock:
        Monotonic seconds source; injectable for tests.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        aging_s: float = 30.0,
        weight_of: Optional[Callable[[str], float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if aging_s <= 0.0:
            raise ValueError(f"aging_s must be > 0, got {aging_s}")
        self.max_depth = max_depth
        self.aging_s = aging_s
        self._weight_of = weight_of or (lambda tenant: 1.0)
        self._clock = clock
        self._cond = threading.Condition()
        self._entries: List[QueuedEntry] = []
        self._served: Dict[str, float] = {}
        self._seq = 0
        self._stats = _QueueStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Current depth."""
        with self._cond:
            return len(self._entries)

    def push(self, entry: QueuedEntry) -> int:
        """Enqueue; returns the new depth.

        Raises :class:`AdmissionRejected` (reason ``queue_full``) at
        capacity — the message keeps the historical "queue is full"
        wording that clients match on.
        """
        with self._cond:
            depth = len(self._entries)
            if self.max_depth is not None and depth >= self.max_depth:
                raise AdmissionRejected(
                    f"job queue is full ({depth}/{self.max_depth} queued)",
                    reason="queue_full",
                    tenant=entry.tenant,
                    queue_depth=depth,
                    retry_after_s=1.0,
                )
            entry.enqueued_at = self._clock()
            entry.seq = self._seq
            self._seq += 1
            self._entries.append(entry)
            self._stats.pushed += 1
            self._cond.notify_all()
            return len(self._entries)

    def pop(
        self,
        eligible: Optional[Callable[[str], bool]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Optional[QueuedEntry]:
        """Best eligible entry; blocks while only ineligible ones wait.

        Returns ``None`` when the queue is empty (immediately) or when
        ``timeout`` elapses with every entry ineligible. ``eligible``
        maps a tenant name to "may run another job right now". The
        timeout is wall time (``time.monotonic``) even when a logical
        clock was injected — blocking is real regardless of test clocks.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if not self._entries:
                    return None
                best = self._select_locked(eligible)
                if best is not None:
                    self._entries.remove(best)
                    self._account_pop_locked(best)
                    return best
                remaining = 0.5
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0.0:
                        return None
                # Re-woken by push/remove/notify; the short cap guards
                # against a missed wakeup, not correctness.
                self._cond.wait(remaining)

    def _select_locked(
        self, eligible: Optional[Callable[[str], bool]]
    ) -> Optional[QueuedEntry]:
        now = self._clock()
        best: Optional[QueuedEntry] = None
        best_key = None
        allowed: Dict[str, bool] = {}
        for entry in self._entries:
            ok = allowed.get(entry.tenant)
            if ok is None:
                ok = eligible is None or bool(eligible(entry.tenant))
                allowed[entry.tenant] = ok
            if not ok:
                continue
            key = (
                entry.effective_rank(now, self.aging_s),
                self._served.get(entry.tenant, 0.0),
                entry.seq,
            )
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best

    def _account_pop_locked(self, entry: QueuedEntry) -> None:
        now = self._clock()
        weight = max(float(self._weight_of(entry.tenant)), 1e-9)
        self._served[entry.tenant] = (
            self._served.get(entry.tenant, 0.0) + 1.0 / weight
        )
        waited = max(now - entry.enqueued_at, 0.0)
        entry.waited_s = waited
        self._stats.popped += 1
        self._stats.total_wait_s += waited
        self._stats.max_wait_s = max(self._stats.max_wait_s, waited)
        if entry.effective_rank(now, self.aging_s) < _RANK[entry.priority]:
            self._stats.promoted_pops += 1

    def requeue(self, entry: QueuedEntry) -> None:
        """Put a popped entry back, keeping its arrival time and order.

        For the rare pop/acquire race: the entry lost its concurrency
        slot to a concurrent dispatcher between selection and
        acquisition. Bypasses the capacity check (the entry was already
        admitted) and keeps ``enqueued_at``/``seq``, so aging credit and
        FIFO position survive the round trip.
        """
        with self._cond:
            self._entries.append(entry)
            self._stats.popped -= 1  # the pop is undone, not re-counted
            self._cond.notify_all()

    def remove(self, job_id: str) -> Optional[QueuedEntry]:
        """Withdraw a queued entry (cancellation); ``None`` if not queued."""
        with self._cond:
            for entry in self._entries:
                if entry.job_id == job_id:
                    self._entries.remove(entry)
                    self._stats.removed += 1
                    self._cond.notify_all()
                    return entry
            return None

    def notify(self) -> None:
        """Wake blocked poppers (a concurrency slot was freed)."""
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-ready queue statistics (for ``/v1/admission``)."""
        with self._cond:
            now = self._clock()
            by_priority: Dict[str, int] = {}
            by_tenant: Dict[str, int] = {}
            oldest_wait = 0.0
            for entry in self._entries:
                by_priority[entry.priority] = (
                    by_priority.get(entry.priority, 0) + 1
                )
                by_tenant[entry.tenant] = by_tenant.get(entry.tenant, 0) + 1
                oldest_wait = max(oldest_wait, now - entry.enqueued_at)
            popped = self._stats.popped
            return {
                "depth": len(self._entries),
                "max_depth": self.max_depth,
                "aging_s": self.aging_s,
                "by_priority": dict(sorted(by_priority.items())),
                "by_tenant": dict(sorted(by_tenant.items())),
                "oldest_wait_s": oldest_wait,
                "pushed": self._stats.pushed,
                "popped": popped,
                "removed": self._stats.removed,
                "promoted_pops": self._stats.promoted_pops,
                "max_wait_s": self._stats.max_wait_s,
                "mean_wait_s": (
                    self._stats.total_wait_s / popped if popped else 0.0
                ),
            }
