"""Admission controller: the gate in front of the service's job queue.

One object owns the whole admission decision chain for a request:

1. **Rate** — the tenant's token bucket
   (:class:`~repro.admission.tenants.TenantRegistry`); an empty bucket
   refuses with ``rate_limited``.
2. **Price** — the request is priced by the
   :class:`~repro.admission.estimator.CostEstimator` *before* any
   compute runs.
3. **Budget** — the estimate is reserved against the tenant's cost
   budget window; not fitting refuses with ``budget_exhausted``.
4. **Queue** — the admitted entry joins the
   :class:`~repro.admission.queue.AdmissionQueue`; a full queue refuses
   with ``queue_full`` (the reservation is refunded).

Every decision is published on the event bus (``admission.admitted`` /
``admission.rejected``) and counted in the metrics registry
(``repro_admission_{admitted,rejected,queued}_total``). Completion flows
back through :meth:`reconcile` (convert the reservation into committed
spend, teach the estimator the actual numbers) or :meth:`release` (refund
a cancelled/failed reservation); both paths also free the tenant's
concurrency slot bookkeeping via :meth:`release_slot`.

The controller is engine-agnostic: it never touches jobs, futures or
responses — only tenants, estimates and queue entries — so it is unit
testable with a fake clock and no service at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..errors import AdmissionRejected
from ..obs.events import ADMISSION_ADMITTED, ADMISSION_REJECTED, EventBus
from ..service.metrics import MetricsRegistry
from ..service.spec import ScheduleRequest
from .estimator import CostEstimator, Estimate
from .queue import AdmissionQueue, QueuedEntry
from .tenants import TenantRegistry

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass
class AdmissionDecision:
    """The record of one admitted request (carried on the job).

    ``reconciled`` flips once the reservation was settled (committed or
    refunded) so the settle-exactly-once contract survives retries and
    failure paths.
    """

    job_id: str
    tenant: str
    priority: str
    estimate: Estimate
    queue_depth: int = 0
    reconciled: bool = False
    slot_held: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for job snapshots and events)."""
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "estimate": self.estimate.to_dict(),
            "queue_depth": self.queue_depth,
        }


class AdmissionController:
    """Rate → price → budget → queue, with accounting on the way back.

    Parameters
    ----------
    tenants:
        Tenant policies + live accounting; a permissive default registry
        (no limits) when omitted, so an unconfigured service admits
        everything — exactly the pre-admission behaviour.
    estimator:
        Request pricer; a fresh uncalibrated one when omitted.
    max_queue_depth, aging_s:
        Forwarded to the owned :class:`AdmissionQueue`.
    metrics, events:
        Counter registry and event bus to report decisions on; both
        optional (silent when omitted).
    clock:
        Monotonic seconds source shared with the registry/queue.
    """

    def __init__(
        self,
        *,
        tenants: Optional[TenantRegistry] = None,
        estimator: Optional[CostEstimator] = None,
        max_queue_depth: Optional[int] = None,
        aging_s: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.tenants = (
            tenants if tenants is not None else TenantRegistry(clock=clock)
        )
        self.estimator = estimator if estimator is not None else CostEstimator()
        self.queue = AdmissionQueue(
            max_depth=max_queue_depth,
            aging_s=aging_s,
            weight_of=lambda name: self.tenants.policy(name).weight,
            clock=clock,
        )
        self.metrics = metrics
        self.events = events

    # ------------------------------------------------------------------
    # the admit path
    # ------------------------------------------------------------------
    def admit(
        self,
        request: ScheduleRequest,
        job_id: str,
        *,
        enqueue: bool = True,
        stages: Optional[Any] = None,
    ) -> AdmissionDecision:
        """Run the full gate chain; enqueue on success.

        Returns the :class:`AdmissionDecision` the caller must carry to
        :meth:`reconcile`/:meth:`release`. Raises
        :class:`~repro.errors.AdmissionRejected` with a typed reason on
        any refusal; refused requests leave no reservation behind.

        ``enqueue=False`` is the synchronous path: the rate and budget
        gates apply and the reservation is taken, but the request runs
        immediately on the caller's thread — no queue entry, no
        concurrency slot.

        ``stages`` is an optional
        :class:`~repro.obs.stages.StageTimings`; each gate marks its
        boundary (``admit`` → ``estimate`` → ``reserve``, with the
        enqueue cost folded into ``reserve``) so admitted requests carry
        the gate chain's latency decomposition.
        """
        tenant = request.tenant
        ok, retry_after = self.tenants.try_rate(tenant)
        if not ok:
            raise self._reject(
                AdmissionRejected(
                    f"tenant {tenant!r} is rate limited "
                    f"(retry in {retry_after:.2f}s)",
                    reason="rate_limited",
                    tenant=tenant,
                    retry_after_s=retry_after,
                    queue_depth=len(self.queue),
                )
            )
        if stages is not None:
            stages.mark("admit")
        estimate = self.estimator.estimate(request)
        if stages is not None:
            stages.mark("estimate")
        ok, retry_after = self.tenants.try_reserve(tenant, estimate.cost)
        if not ok:
            raise self._reject(
                AdmissionRejected(
                    f"tenant {tenant!r} cost budget exhausted: estimated "
                    f"${estimate.cost:.4f} does not fit the current window "
                    f"(resets in {retry_after:.0f}s)",
                    reason="budget_exhausted",
                    tenant=tenant,
                    retry_after_s=max(retry_after, 1.0),
                    queue_depth=len(self.queue),
                    estimated_cost=estimate.cost,
                )
            )
        depth = 0
        if enqueue:
            entry = QueuedEntry(
                job_id=job_id,
                tenant=tenant,
                priority=request.priority,
                estimated_cost=estimate.cost,
            )
            try:
                depth = self.queue.push(entry)
            except AdmissionRejected as exc:
                # The reservation must not outlive the refused request.
                self.tenants.release(tenant, estimate.cost)
                raise self._reject(exc)
        if stages is not None:
            stages.mark("reserve")
        decision = AdmissionDecision(
            job_id=job_id,
            tenant=tenant,
            priority=request.priority,
            estimate=estimate,
            queue_depth=depth,
        )
        if self.metrics is not None:
            self.metrics.incr("admission_admitted")
            if enqueue:
                self.metrics.incr("admission_queued")
        if self.events is not None:
            self.events.publish(
                ADMISSION_ADMITTED,
                job_id=job_id,
                tenant=tenant,
                priority=request.priority,
                estimated_cost=estimate.cost,
                estimate_source=estimate.source,
                queue_depth=depth,
            )
        return decision

    def _reject(self, exc: AdmissionRejected) -> AdmissionRejected:
        """Count + publish a refusal; returns ``exc`` for ``raise``."""
        if exc.reason == "queue_full":
            # rate/budget refusals are already counted by the registry's
            # own gates; queue_full is decided outside it.
            self.tenants.note_rejected(exc.tenant, exc.reason)
        if self.metrics is not None:
            self.metrics.incr("admission_rejected")
            self.metrics.incr(f"admission_rejected_{exc.reason}")
        if self.events is not None:
            self.events.publish(
                ADMISSION_REJECTED,
                tenant=exc.tenant,
                reason=exc.reason,
                retry_after_s=exc.retry_after_s,
                queue_depth=exc.queue_depth,
                estimated_cost=exc.estimated_cost,
            )
        return exc

    # ------------------------------------------------------------------
    # the dispatch path (called by the engine's dispatcher threads)
    # ------------------------------------------------------------------
    def next_entry(
        self, *, timeout: Optional[float] = None
    ) -> Optional[QueuedEntry]:
        """Pop the best runnable entry and claim its tenant's slot.

        Blocks (bounded by ``timeout``) while only over-cap tenants wait;
        returns ``None`` when the queue is empty.
        """
        while True:
            entry = self.queue.pop(self.tenants.can_run, timeout=timeout)
            if entry is None:
                return None
            if self.tenants.acquire_slot(entry.tenant):
                return entry
            # Lost the slot to a concurrent dispatcher: put the entry
            # back (order preserved) and select again.
            self.queue.requeue(entry)

    def withdraw(self, job_id: str) -> bool:
        """Remove a still-queued entry (cancellation), refunding it."""
        entry = self.queue.remove(job_id)
        if entry is None:
            return False
        self.tenants.release(entry.tenant, entry.estimated_cost)
        return True

    def release_slot(self, tenant: str) -> None:
        """Free a tenant concurrency slot and wake waiting dispatchers."""
        self.tenants.release_slot(tenant)
        self.queue.notify()

    # ------------------------------------------------------------------
    # the settle path
    # ------------------------------------------------------------------
    def reconcile(
        self,
        request: ScheduleRequest,
        decision: AdmissionDecision,
        *,
        actual_cost: float,
        actual_duration_s: float,
    ) -> Optional[Dict[str, Any]]:
        """Settle a *completed* run: commit spend, teach the estimator.

        Returns the admission diagnostics for the ledger row (tenant,
        priority, estimate, relative errors), or ``None`` when this
        decision was already settled.
        """
        if decision.reconciled:
            return None
        decision.reconciled = True
        self.tenants.commit(
            decision.tenant, decision.estimate.cost, actual_cost
        )
        diagnostics = self.estimator.observe(
            request,
            decision.estimate,
            actual_cost=actual_cost,
            actual_duration_s=actual_duration_s,
        )
        diagnostics["tenant"] = decision.tenant
        diagnostics["priority"] = decision.priority
        return diagnostics

    def release(self, decision: AdmissionDecision) -> None:
        """Refund an *unfinished* run's reservation (failed / cancelled)."""
        if decision.reconciled:
            return
        decision.reconciled = True
        self.tenants.release(decision.tenant, decision.estimate.cost)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-ready admission snapshot (``GET /v1/admission``)."""
        return {
            "queue": self.queue.stats(),
            "tenants": self.tenants.snapshot(),
            "estimator": self.estimator.accuracy(),
        }
