"""VM categories (§III-B).

A category is the provider's instance *type*: speed ``s_k`` (instructions/s),
per-hour cost ``c_h,k`` (converted to $/s internally), an initial booking
cost ``c_ini,k`` and a boot delay ``t_boot`` (uncharged). Categories are
sorted by hourly cost; the paper expects — but does not assume — speeds to
follow the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlatformError
from ..units import HOUR

__all__ = ["VMCategory"]


@dataclass(frozen=True)
class VMCategory:
    """One rentable VM type.

    Parameters
    ----------
    name:
        Provider label (``"small"``, ``"medium"``...).
    speed:
        Instructions per second (``s_k``), > 0.
    hourly_cost:
        ``c_h,k`` in dollars per hour, >= 0.
    initial_cost:
        ``c_ini,k`` booking fee in dollars, >= 0.
    boot_time:
        ``t_boot`` in seconds, uncharged, >= 0.
    cores:
        ``n_k`` single-task processors. The paper's evaluation (like ours)
        uses single-core VMs; the field exists for the multi-core extension.
    spot:
        Preemptible (spot-market) capacity: the VM rents below the
        on-demand price but the provider may revoke it at any instant
        (see :class:`~repro.platform.pricing.SpotMarket`). ``hourly_cost``
        is then the *ceiling* bid; the realized rate follows the market's
        price trajectory, never above the ceiling.
    """

    name: str
    speed: float
    hourly_cost: float
    initial_cost: float = 0.0
    boot_time: float = 0.0
    cores: int = 1
    spot: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("VM category needs a non-empty name")
        if not np.isfinite(self.speed) or self.speed <= 0.0:
            raise PlatformError(f"category {self.name!r}: speed must be > 0")
        if not np.isfinite(self.hourly_cost) or self.hourly_cost < 0.0:
            raise PlatformError(f"category {self.name!r}: hourly cost must be >= 0")
        if self.initial_cost < 0.0:
            raise PlatformError(f"category {self.name!r}: initial cost must be >= 0")
        if self.boot_time < 0.0:
            raise PlatformError(f"category {self.name!r}: boot time must be >= 0")
        if self.cores < 1:
            raise PlatformError(f"category {self.name!r}: cores must be >= 1")

    @property
    def cost_rate(self) -> float:
        """``c_h,k`` in dollars per second."""
        return self.hourly_cost / HOUR

    def compute_time(self, instructions: float) -> float:
        """Seconds to execute ``instructions`` on this category."""
        if instructions < 0.0:
            raise PlatformError(f"negative instruction count {instructions}")
        return instructions / self.speed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(s={self.speed:.3g} op/s, ${self.hourly_cost:.4f}/h, "
            f"init=${self.initial_cost:.4f}, boot={self.boot_time:.0f}s)"
        )
