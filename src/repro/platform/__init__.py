"""IaaS platform substrate: VM categories, datacenter, cost model."""

from .cloud import PAPER_PLATFORM, CloudPlatform, make_linear_platform
from .pricing import CostBreakdown, datacenter_cost, vm_cost
from .vm import VMCategory

__all__ = [
    "PAPER_PLATFORM",
    "CloudPlatform",
    "CostBreakdown",
    "VMCategory",
    "datacenter_cost",
    "make_linear_platform",
    "vm_cost",
]
