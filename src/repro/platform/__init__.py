"""IaaS platform substrate: VM categories, datacenter, cost model."""

from .cloud import PAPER_PLATFORM, CloudPlatform, make_linear_platform
from .pricing import (
    CostBreakdown,
    SpotMarket,
    add_spot_categories,
    datacenter_cost,
    on_demand_twin,
    spot_only,
    spot_variant,
    spot_vm_cost,
    strip_spot,
    vm_cost,
)
from .vm import VMCategory

__all__ = [
    "PAPER_PLATFORM",
    "CloudPlatform",
    "CostBreakdown",
    "SpotMarket",
    "VMCategory",
    "add_spot_categories",
    "datacenter_cost",
    "make_linear_platform",
    "on_demand_twin",
    "spot_only",
    "spot_variant",
    "spot_vm_cost",
    "strip_spot",
    "vm_cost",
]
