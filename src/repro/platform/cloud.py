"""The IaaS platform specification (§III-B, Table II).

A :class:`CloudPlatform` bundles the VM categories, the VM↔datacenter
bandwidth ``bw``, and the datacenter rates: ``c_of`` per byte in/out of the
cloud and the storage price behind the per-time rate ``c_h,DC``.

The paper's Eq. (2) charges the datacenter ``c_h,DC`` dollars per second of
total execution; Table II expresses it as a $/GB/month storage price. We
derive the per-second rate from a workflow's data footprint via
:meth:`CloudPlatform.datacenter_rate`.

``PAPER_PLATFORM`` instantiates Table II. The HAL scan leaves several cells
illegible; the chosen values (documented in DESIGN.md §4) keep the paper's
stated structure — three categories, cost linear in speed, a single setup
delay/cost for all categories, per-second billing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..errors import PlatformError
from ..units import GB, GFLOP, MB, MONTH
from ..workflow.dag import Workflow
from .vm import VMCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .pricing import SpotMarket

__all__ = ["CloudPlatform", "PAPER_PLATFORM", "make_linear_platform"]


@dataclass(frozen=True)
class CloudPlatform:
    """Datacenter + VM catalogue (§III-B).

    Parameters
    ----------
    categories:
        VM types, automatically sorted by hourly cost (the paper's
        convention ``c_h,1 ≤ … ≤ c_h,k``).
    bandwidth:
        Bytes/s between any VM and the datacenter, both directions (``bw``).
    transfer_cost_per_byte:
        ``c_of`` (the paper quotes $/GB; store $/byte).
    storage_cost_per_byte_month:
        Datacenter storage price in $/byte/month, used to derive ``c_h,DC``.
    datacenter_rate_override:
        Fixed ``c_h,DC`` in $/s; when set, the storage-derived rate is
        ignored (useful for tests and sensitivity studies).
    spot_market:
        The :class:`~repro.platform.pricing.SpotMarket` behind any
        ``spot=True`` categories (price trajectory, cold start). ``None``
        on spot-free platforms; attach via
        :func:`~repro.platform.pricing.add_spot_categories`.
    """

    categories: Tuple[VMCategory, ...]
    bandwidth: float
    transfer_cost_per_byte: float = 0.0
    storage_cost_per_byte_month: float = 0.0
    datacenter_rate_override: Optional[float] = None
    name: str = "cloud"
    spot_market: Optional["SpotMarket"] = None

    def __post_init__(self) -> None:
        if not self.categories:
            raise PlatformError("platform needs at least one VM category")
        if self.bandwidth <= 0.0:
            raise PlatformError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.transfer_cost_per_byte < 0.0:
            raise PlatformError("transfer cost must be >= 0")
        if self.storage_cost_per_byte_month < 0.0:
            raise PlatformError("storage cost must be >= 0")
        if (
            self.datacenter_rate_override is not None
            and self.datacenter_rate_override < 0.0
        ):
            raise PlatformError("datacenter rate must be >= 0")
        names = [c.name for c in self.categories]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate category names in {names}")
        ordered = tuple(sorted(self.categories, key=lambda c: (c.hourly_cost, c.speed)))
        object.__setattr__(self, "categories", ordered)

    # ------------------------------------------------------------------
    @property
    def n_categories(self) -> int:
        """Number of VM categories ``k``."""
        return len(self.categories)

    def category(self, name: str) -> VMCategory:
        """Look up a category by name."""
        for cat in self.categories:
            if cat.name == name:
                return cat
        raise PlatformError(f"no VM category {name!r} on platform {self.name!r}")

    @property
    def cheapest(self) -> VMCategory:
        """Category 1: smallest hourly cost."""
        return self.categories[0]

    @property
    def most_expensive(self) -> VMCategory:
        """Category k: largest hourly cost."""
        return self.categories[-1]

    @property
    def fastest(self) -> VMCategory:
        """Category with the highest speed (usually == most expensive)."""
        return max(self.categories, key=lambda c: c.speed)

    @property
    def mean_speed(self) -> float:
        """``s̄``: mean speed over categories, used by Eq. (5)-(6)."""
        return sum(c.speed for c in self.categories) / len(self.categories)

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` between a VM and the datacenter."""
        if nbytes < 0.0:
            raise PlatformError(f"negative transfer size {nbytes}")
        return nbytes / self.bandwidth

    def datacenter_rate(self, wf: Workflow) -> float:
        """``c_h,DC`` in $/s for executing ``wf``.

        Derived from the storage price applied to the workflow's total data
        footprint (all edge data plus external inputs and outputs), unless
        an explicit override is configured.
        """
        if self.datacenter_rate_override is not None:
            return self.datacenter_rate_override
        footprint = (
            wf.total_edge_data + wf.external_input_data + wf.external_output_data
        )
        return self.storage_cost_per_byte_month * footprint / MONTH

    def io_cost(self, wf: Workflow) -> float:
        """``(d_in,DC + d_DC,out) × c_of`` — external transfer dollars."""
        return (
            wf.external_input_data + wf.external_output_data
        ) * self.transfer_cost_per_byte

    def with_bandwidth(self, bandwidth: float) -> "CloudPlatform":
        """Copy of this platform with a different VM↔DC bandwidth."""
        return CloudPlatform(
            categories=self.categories,
            bandwidth=bandwidth,
            transfer_cost_per_byte=self.transfer_cost_per_byte,
            storage_cost_per_byte_month=self.storage_cost_per_byte_month,
            datacenter_rate_override=self.datacenter_rate_override,
            name=self.name,
            spot_market=self.spot_market,
        )


def make_linear_platform(
    *,
    base_speed: float = 4.4 * GFLOP,
    base_hourly_cost: float = 0.0425,
    n_categories: int = 3,
    speed_factor: float = 1.8,
    cost_factor: float = 2.0,
    boot_time: float = 100.0,
    initial_cost: float = 0.005,
    bandwidth: float = 125.0 * MB,
    transfer_cost_per_gb: float = 0.055,
    storage_cost_per_gb_month: float = 0.022,
    cores: int = 1,
    name: str = "linear-cloud",
) -> CloudPlatform:
    """Build a platform with near-linear cost/speed and a mild efficiency
    penalty for faster categories.

    Category ``i`` has speed ``base_speed × speed_factor**i`` and hourly
    cost ``base_hourly_cost × cost_factor**i``; all categories share the
    setup delay and cost, as in Table II. The defaults make speed grow
    *slightly* sub-linearly in cost (×1.8 speed per ×2 cost): §V-A states
    the cost is "linear with the speed" but the paper's own observations
    require faster categories to be less cost-efficient — Figure 1i's
    discussion calls category 2 VMs "mid-efficient", and CG's sub-budgets
    can only afford "instances of the cheapest VM type" (§V-D3), which is
    impossible under exactly proportional pricing (compute dollars would be
    category-independent). The mild penalty matches real cloud single-thread
    perf/$ curves and keeps both statements approximately true.
    """
    if n_categories < 1:
        raise PlatformError(f"need at least one category, got {n_categories}")
    if speed_factor <= 0.0 or cost_factor <= 0.0:
        raise PlatformError(
            f"speed/cost factors must be > 0, got {speed_factor}/{cost_factor}"
        )
    cats = tuple(
        VMCategory(
            name=f"cat{i + 1}",
            speed=base_speed * speed_factor**i,
            hourly_cost=base_hourly_cost * cost_factor**i,
            initial_cost=initial_cost,
            boot_time=boot_time,
            cores=cores,
        )
        for i in range(n_categories)
    )
    return CloudPlatform(
        categories=cats,
        bandwidth=bandwidth,
        transfer_cost_per_byte=transfer_cost_per_gb / GB,
        storage_cost_per_byte_month=storage_cost_per_gb_month / GB,
        name=name,
    )


#: Table II instantiation (see module docstring and DESIGN.md §4).
PAPER_PLATFORM = make_linear_platform(name="paper-table2")
