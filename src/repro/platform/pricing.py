"""Cost accounting (§III-C, Eq. 1-2).

These functions are the *single* place where money is computed, used both by
the planners (conservative estimates) and by the simulator (actual spend),
so the two can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import PlatformError
from ..units import ceil_seconds
from ..workflow.dag import Workflow
from .cloud import CloudPlatform
from .vm import VMCategory

__all__ = ["vm_cost", "datacenter_cost", "CostBreakdown"]


def vm_cost(
    category: VMCategory,
    start: float,
    end: float,
    *,
    per_second_billing: bool = True,
) -> float:
    """Cost of one VM booked from ``start`` (ready) to ``end`` (Eq. 1).

    ``C_v = (H_end − H_start) × c_h + c_ini``; with per-second billing
    (§V-A: "The VM is paid for each used second") the duration is rounded up
    to a whole second.
    """
    if end < start - 1e-9:
        raise PlatformError(f"VM ends ({end}) before it starts ({start})")
    duration = max(end - start, 0.0)
    if per_second_billing:
        duration = ceil_seconds(duration)
    return duration * category.cost_rate + category.initial_cost


def datacenter_cost(
    platform: CloudPlatform,
    wf: Workflow,
    makespan: float,
) -> float:
    """Datacenter cost over the whole execution (Eq. 2).

    ``C_DC = (d_in,DC + d_DC,out) × c_of + (H_end,last − H_start,first) × c_h,DC``.
    """
    if makespan < 0.0:
        raise PlatformError(f"negative makespan {makespan}")
    return platform.io_cost(wf) + makespan * platform.datacenter_rate(wf)


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized total cost ``C_wf`` of one execution.

    ``vm_rental`` already includes the initial booking fees; they are also
    reported separately in ``vm_initial`` for the reports.
    """

    vm_rental: float
    vm_initial: float
    datacenter_time: float
    datacenter_io: float

    @property
    def total(self) -> float:
        """``C_wf = Σ C_v + C_DC``."""
        return self.vm_rental + self.datacenter_time + self.datacenter_io

    @staticmethod
    def build(
        platform: CloudPlatform,
        wf: Workflow,
        makespan: float,
        vm_usage: Iterable[tuple[VMCategory, float, float]],
        *,
        per_second_billing: bool = True,
    ) -> "CostBreakdown":
        """Aggregate Eq. (1) over ``(category, start, end)`` triples + Eq. (2)."""
        rental = 0.0
        initial = 0.0
        for category, start, end in vm_usage:
            rental += vm_cost(
                category, start, end, per_second_billing=per_second_billing
            )
            initial += category.initial_cost
        return CostBreakdown(
            vm_rental=rental,
            vm_initial=initial,
            datacenter_time=makespan * platform.datacenter_rate(wf),
            datacenter_io=platform.io_cost(wf),
        )
