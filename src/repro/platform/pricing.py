"""Cost accounting (§III-C, Eq. 1-2) and the spot-market price model.

These functions are the *single* place where money is computed, used both by
the planners (conservative estimates) and by the simulator (actual spend),
so the two can never drift apart.

The paper prices on-demand VMs only; :class:`SpotMarket` adds the
preemptible category of real IaaS platforms (the variable-pricing model of
arXiv 2504.21536): spot VMs rent at a *ceiling* rate discounted below
on-demand, the realized price follows a seeded piecewise-constant
trajectory **at or below** that ceiling, boots pay an extra cold-start
delay, and — the part the fault layer models — the provider may revoke the
whole market at any instant. Keeping the trajectory below the ceiling is
what lets every planner keep using ``category.cost_rate`` as a safe
estimate: a spot plan can only come in *under* its projection, never over,
so the never-overspend budget discipline survives variable pricing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import PlatformError
from ..rng import RngLike, as_generator
from ..units import HOUR, ceil_seconds
from ..workflow.dag import Workflow
from .cloud import CloudPlatform
from .vm import VMCategory

__all__ = [
    "vm_cost",
    "datacenter_cost",
    "CostBreakdown",
    "SpotMarket",
    "SPOT_SUFFIX",
    "spot_vm_cost",
    "spot_variant",
    "add_spot_categories",
    "on_demand_twin",
    "spot_only",
    "strip_spot",
]

#: Naming convention tying a spot category to its on-demand twin:
#: ``cat2`` ↔ ``cat2-spot``. :func:`on_demand_twin` relies on it.
SPOT_SUFFIX = "-spot"


@dataclass(frozen=True)
class SpotMarket:
    """The spot tier of a platform: discounted, variable, revocable.

    Parameters
    ----------
    discount:
        Fraction off the on-demand hourly price; the spot *ceiling* rate is
        ``(1 - discount) × c_h,k``. In ``[0, 1)``.
    cold_start_s:
        Extra (uncharged) boot delay of spot capacity on top of the
        category's ``t_boot`` — the cold-start penalty of arXiv 2504.21536.
        Costs time, not direct money.
    segments:
        Piecewise-constant price trajectory: ``(start_s, multiplier)``
        pairs sorted by start time. The realized $/s rate at time *t* is
        ``ceiling_rate × multiplier(t)`` where ``multiplier(t)`` is the
        last segment at or before *t* (1.0 before the first segment or
        when empty). Multipliers live in ``(0, 1]`` — the market never
        charges above the bid ceiling, which keeps planner estimates
        conservative by construction.
    """

    discount: float = 0.6
    cold_start_s: float = 120.0
    segments: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount < 1.0:
            raise PlatformError(
                f"spot discount must be in [0, 1), got {self.discount}"
            )
        if self.cold_start_s < 0.0:
            raise PlatformError(
                f"spot cold start must be >= 0, got {self.cold_start_s}"
            )
        segs = tuple((float(t), float(m)) for t, m in self.segments)
        prev = -1.0
        for t, m in segs:
            if t < 0.0:
                raise PlatformError(f"trajectory segment at negative time {t}")
            if t <= prev:
                raise PlatformError(
                    "trajectory segments must be strictly increasing in time"
                )
            if not 0.0 < m <= 1.0:
                raise PlatformError(
                    f"trajectory multiplier must be in (0, 1], got {m}"
                )
            prev = t
        object.__setattr__(self, "segments", segs)

    # ------------------------------------------------------------------
    def multiplier_at(self, t: float) -> float:
        """Price multiplier in effect at absolute time ``t``."""
        mult = 1.0
        for start, m in self.segments:
            if start <= t:
                mult = m
            else:
                break
        return mult

    def integrate(self, start: float, end: float) -> float:
        """``∫ multiplier(t) dt`` over ``[start, end]`` (multiplier-seconds).

        With an empty trajectory this is exactly ``end - start``, so spot
        billing degenerates to flat ceiling-rate billing.
        """
        if end < start:
            raise PlatformError(f"integration window ends ({end}) before "
                                f"it starts ({start})")
        if not self.segments:
            return end - start
        total = 0.0
        cur = start
        mult = self.multiplier_at(start)
        for seg_start, m in self.segments:
            if seg_start <= start:
                continue
            if seg_start >= end:
                break
            total += (seg_start - cur) * mult
            cur, mult = seg_start, m
        total += (end - cur) * mult
        return total

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "discount": self.discount,
            "cold_start_s": self.cold_start_s,
            "segments": [list(seg) for seg in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpotMarket":
        """Rebuild a market from :meth:`to_dict` output."""
        known = {"discount", "cold_start_s", "segments"}
        unknown = set(data) - known
        if unknown:
            raise PlatformError(f"unknown spot market fields: {sorted(unknown)}")
        return cls(
            discount=data.get("discount", 0.6),
            cold_start_s=data.get("cold_start_s", 120.0),
            segments=tuple(
                (seg[0], seg[1]) for seg in (data.get("segments") or ())
            ),
        )

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        *,
        rng: RngLike = None,
        horizon: float = 48.0 * HOUR,
        segment_s: float = HOUR,
        low: float = 0.4,
        discount: float = 0.6,
        cold_start_s: float = 120.0,
    ) -> "SpotMarket":
        """Draw a seeded piecewise trajectory (bounded random walk).

        Splits ``[0, horizon]`` into ``segment_s``-long segments and walks
        the multiplier inside ``[low, 1]`` with reflecting steps, so a
        given seed always yields the same trajectory.
        """
        if horizon <= 0.0:
            raise PlatformError(f"trajectory horizon must be > 0, got {horizon}")
        if segment_s <= 0.0:
            raise PlatformError(f"segment length must be > 0, got {segment_s}")
        if not 0.0 < low <= 1.0:
            raise PlatformError(f"trajectory floor must be in (0, 1], got {low}")
        gen = as_generator(rng)
        n = max(int(horizon / segment_s), 1)
        segments = []
        mult = float(gen.uniform(low, 1.0))
        for i in range(n):
            segments.append((i * segment_s, round(mult, 6)))
            step = float(gen.uniform(-0.15, 0.15)) * (1.0 - low)
            mult = mult + step
            if mult > 1.0:
                mult = 2.0 - mult
            if mult < low:
                mult = 2.0 * low - mult
            mult = min(max(mult, low), 1.0)
        return cls(discount=discount, cold_start_s=cold_start_s,
                   segments=tuple(segments))


def spot_vm_cost(
    category: VMCategory,
    market: Optional[SpotMarket],
    start: float,
    end: float,
    *,
    per_second_billing: bool = True,
) -> float:
    """Eq. (1) for a spot VM: ceiling rate × trajectory integral + ``c_ini``.

    ``category.cost_rate`` is the ceiling; the realized spend follows the
    market's multiplier over the rental window and is therefore never above
    :func:`vm_cost` of the same window. A missing market (or a non-spot
    category) falls back to flat billing.
    """
    if market is None or not category.spot:
        return vm_cost(category, start, end,
                       per_second_billing=per_second_billing)
    if end < start - 1e-9:
        raise PlatformError(f"VM ends ({end}) before it starts ({start})")
    duration = max(end - start, 0.0)
    if per_second_billing:
        duration = ceil_seconds(duration)
    return (
        market.integrate(start, start + duration) * category.cost_rate
        + category.initial_cost
    )


def spot_variant(category: VMCategory, market: SpotMarket) -> VMCategory:
    """The preemptible twin of an on-demand category.

    Same silicon, discounted ceiling price, longer (still uncharged) boot,
    ``spot=True``. Named ``<name>-spot`` so :func:`on_demand_twin` can map
    back.
    """
    if category.spot:
        raise PlatformError(f"category {category.name!r} is already spot")
    return VMCategory(
        name=f"{category.name}{SPOT_SUFFIX}",
        speed=category.speed,
        hourly_cost=category.hourly_cost * (1.0 - market.discount),
        initial_cost=category.initial_cost,
        boot_time=category.boot_time + market.cold_start_s,
        cores=category.cores,
        spot=True,
    )


def add_spot_categories(
    platform: CloudPlatform,
    market: SpotMarket,
    *,
    names: Optional[Sequence[str]] = None,
) -> CloudPlatform:
    """Platform with a spot twin next to each on-demand category.

    ``names`` restricts which categories get a twin (default: all
    non-spot ones). The returned platform carries ``market`` so the
    simulator bills spot rentals along the price trajectory.
    """
    bases = [c for c in platform.categories if not c.spot]
    if names is not None:
        wanted = set(names)
        unknown = wanted - {c.name for c in bases}
        if unknown:
            raise PlatformError(
                f"no on-demand category named {sorted(unknown)} on "
                f"platform {platform.name!r}"
            )
        twins = [spot_variant(c, market) for c in bases if c.name in wanted]
    else:
        twins = [spot_variant(c, market) for c in bases]
    return CloudPlatform(
        categories=tuple(bases) + tuple(twins),
        bandwidth=platform.bandwidth,
        transfer_cost_per_byte=platform.transfer_cost_per_byte,
        storage_cost_per_byte_month=platform.storage_cost_per_byte_month,
        datacenter_rate_override=platform.datacenter_rate_override,
        name=f"{platform.name}+spot",
        spot_market=market,
    )


def on_demand_twin(platform: CloudPlatform, category: VMCategory) -> VMCategory:
    """The on-demand category backing a spot one (itself when not spot).

    Used by recovery's fall-back-to-on-demand path after a market-wide
    revocation. Falls back to the spot category itself when the platform
    does not carry the twin (degenerate spot-only platforms).
    """
    if not category.spot:
        return category
    base = category.name
    if base.endswith(SPOT_SUFFIX):
        base = base[: -len(SPOT_SUFFIX)]
    try:
        return platform.category(base)
    except PlatformError:
        return category


def spot_only(platform: CloudPlatform) -> CloudPlatform:
    """Platform view with only the spot categories (spot-first planning).

    Schedules embed categories by value, so a plan drawn on this view
    executes fine on the full platform — which is exactly the spot-market
    workflow: plan on cheap preemptible capacity, keep the on-demand twins
    in reserve for recovery after a revocation.
    """
    spots = tuple(c for c in platform.categories if c.spot)
    if not spots:
        raise PlatformError(
            f"platform {platform.name!r} has no spot categories; "
            "add them via add_spot_categories()"
        )
    if len(spots) == len(platform.categories):
        return platform
    return CloudPlatform(
        categories=spots,
        bandwidth=platform.bandwidth,
        transfer_cost_per_byte=platform.transfer_cost_per_byte,
        storage_cost_per_byte_month=platform.storage_cost_per_byte_month,
        datacenter_rate_override=platform.datacenter_rate_override,
        name=platform.name,
        spot_market=platform.spot_market,
    )


def strip_spot(platform: CloudPlatform) -> CloudPlatform:
    """Platform view without spot categories (post-revocation planning).

    Keeps the market attached (already-provisioned spot VMs still bill
    along the trajectory); only fresh spot enrollment disappears. Returns
    the platform unchanged when it has no spot categories.
    """
    bases = tuple(c for c in platform.categories if not c.spot)
    if len(bases) == len(platform.categories):
        return platform
    if not bases:
        raise PlatformError(
            f"platform {platform.name!r} has only spot categories; "
            "nothing to fall back to"
        )
    return CloudPlatform(
        categories=bases,
        bandwidth=platform.bandwidth,
        transfer_cost_per_byte=platform.transfer_cost_per_byte,
        storage_cost_per_byte_month=platform.storage_cost_per_byte_month,
        datacenter_rate_override=platform.datacenter_rate_override,
        name=platform.name,
        spot_market=platform.spot_market,
    )


def vm_cost(
    category: VMCategory,
    start: float,
    end: float,
    *,
    per_second_billing: bool = True,
) -> float:
    """Cost of one VM booked from ``start`` (ready) to ``end`` (Eq. 1).

    ``C_v = (H_end − H_start) × c_h + c_ini``; with per-second billing
    (§V-A: "The VM is paid for each used second") the duration is rounded up
    to a whole second.
    """
    if end < start - 1e-9:
        raise PlatformError(f"VM ends ({end}) before it starts ({start})")
    duration = max(end - start, 0.0)
    if per_second_billing:
        duration = ceil_seconds(duration)
    return duration * category.cost_rate + category.initial_cost


def datacenter_cost(
    platform: CloudPlatform,
    wf: Workflow,
    makespan: float,
) -> float:
    """Datacenter cost over the whole execution (Eq. 2).

    ``C_DC = (d_in,DC + d_DC,out) × c_of + (H_end,last − H_start,first) × c_h,DC``.
    """
    if makespan < 0.0:
        raise PlatformError(f"negative makespan {makespan}")
    return platform.io_cost(wf) + makespan * platform.datacenter_rate(wf)


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized total cost ``C_wf`` of one execution.

    ``vm_rental`` already includes the initial booking fees; they are also
    reported separately in ``vm_initial`` for the reports.
    """

    vm_rental: float
    vm_initial: float
    datacenter_time: float
    datacenter_io: float

    @property
    def total(self) -> float:
        """``C_wf = Σ C_v + C_DC``."""
        return self.vm_rental + self.datacenter_time + self.datacenter_io

    @staticmethod
    def build(
        platform: CloudPlatform,
        wf: Workflow,
        makespan: float,
        vm_usage: Iterable[tuple[VMCategory, float, float]],
        *,
        per_second_billing: bool = True,
    ) -> "CostBreakdown":
        """Aggregate Eq. (1) over ``(category, start, end)`` triples + Eq. (2).

        Spot categories bill along the platform's market trajectory
        (:func:`spot_vm_cost`); with no market attached — or for on-demand
        categories — the arithmetic is exactly :func:`vm_cost`, so
        spot-free executions are bit-identical to the pre-spot code path.
        """
        market = platform.spot_market
        rental = 0.0
        initial = 0.0
        for category, start, end in vm_usage:
            if category.spot and market is not None:
                rental += spot_vm_cost(
                    category, market, start, end,
                    per_second_billing=per_second_billing,
                )
            else:
                rental += vm_cost(
                    category, start, end,
                    per_second_billing=per_second_billing,
                )
            initial += category.initial_cost
        return CostBreakdown(
            vm_rental=rental,
            vm_initial=initial,
            datacenter_time=makespan * platform.datacenter_rate(wf),
            datacenter_io=platform.io_cost(wf),
        )
