"""The scheduling service engine: sync calls, async jobs, cache, metrics.

:class:`SchedulingService` is the in-process core that the HTTP gateway,
the CLI, and library users all share. It turns a declarative
:class:`~repro.service.spec.ScheduleRequest` into a full
:class:`~repro.service.spec.ScheduleResponse`:

1. resolve the workflow, platform and budget from the specs;
2. run the requested algorithm;
3. optionally replay the schedule against ``n_reps`` sampled weight
   realizations (the paper's validity/makespan statistics, per request);
4. serve repeats straight from a content-addressed LRU cache.

Heavy traffic is absorbed two ways: identical requests collapse into cache
hits, and distinct requests fan out over a worker pool via ``submit`` /
``submit_batch`` (scheduling releases the GIL poorly, but the evaluation
replays are numpy-heavy, and multi-worker throughput also keeps the HTTP
gateway responsive while long HEFTBUDG+ jobs run).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import traceback
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import (
    AdmissionRejected,
    JobNotFoundError,
    JobTimeoutError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from ..io import schedule_to_dict
from ..obs.events import EventBus
from ..obs.ledger import RunRow, get_ledger
from ..obs.slo import SLOMonitor, SLOTarget
from ..obs.stages import StageTimings
from ..obs.tracing import get_tracer
from ..parallel import ShardStats, WorkerPool
from ..scheduling.registry import available_schedulers, make_scheduler
from ..simulation.executor import execute_schedule, sample_weights
from .cache import LRUCache
from .metrics import MetricsRegistry, quantile
from .spec import ScheduleRequest, ScheduleResponse

__all__ = ["JobState", "JobRecord", "SchedulingService", "compute_response"]

#: Execution modes for the service's compute path. ``thread`` keeps the
#: historical in-process behaviour; ``process`` routes each compute into a
#: :class:`repro.parallel.WorkerPool` worker, taking CPU-bound
#: HEFTBUDG+/HEFTBUDG+INV refinement off the GIL.
EXECUTORS = ("thread", "process", "cluster")

RequestLike = Union[ScheduleRequest, Mapping[str, Any]]


class JobState:
    """Lifecycle states of an async job (plain strings, JSON-friendly)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (PENDING, RUNNING, DONE, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """Point-in-time snapshot of one async job."""

    job_id: str
    state: str
    request: Dict[str, Any]
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    response: Optional[ScheduleResponse] = None
    attempts: int = 0
    traceback: Optional[str] = None

    def to_dict(self, *, include_response: bool = True) -> Dict[str, Any]:
        """JSON-ready snapshot; ``include_response=False`` keeps it small."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "request": self.request,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }
        if include_response:
            out["response"] = (
                None if self.response is None else self.response.to_dict()
            )
        return out


class _Job:
    __slots__ = ("record", "future", "request", "decision", "stages")

    def __init__(self, record: JobRecord) -> None:
        self.record = record
        self.future: Optional["Future[ScheduleResponse]"] = None
        self.request: Optional[ScheduleRequest] = None
        self.decision: Any = None  # AdmissionDecision of an admitted job
        self.stages: Optional[StageTimings] = None  # request lifecycle


@dataclass
class _FamilyBase:
    """The spec-family-invariant bundle the batcher caches once.

    Everything downstream of the scheduler call that does not depend on
    ``evaluation.seed`` / ``n_reps``: resolved workflow, platform, budget,
    the scheduling result, and the (family-invariant) datacenter capacity.
    """

    wf: Any
    platform: Any
    budget: float
    result: Any
    cap: float


def _noop_deadline() -> None:
    return None


def _noop_progress(stage: str, done: int, total: int) -> None:
    return None


def compute_response(
    request: ScheduleRequest,
    *,
    check_deadline=_noop_deadline,
    publish_progress=_noop_progress,
) -> ScheduleResponse:
    """The pure compute path: resolve → schedule → evaluate → response.

    Module-level (and using only its arguments) so it runs identically on
    a service worker thread or inside a :class:`repro.parallel.WorkerPool`
    process — the ``--executor process`` mode ships exactly this function.
    ``check_deadline`` is called between evaluation replications (the
    cooperative timeout hook); ``publish_progress`` receives coarse
    ``(stage, done, total)`` updates.
    """
    started = time.perf_counter()
    wf = request.workflow.resolve()
    platform = request.platform.resolve()
    budget = request.budget.resolve(wf, platform)
    try:
        result = make_scheduler(request.algorithm).schedule(
            wf, platform, budget
        )
    except ReproError as exc:
        raise ServiceError(
            f"{request.algorithm} failed on {wf.name or 'workflow'}: {exc}"
        ) from exc
    publish_progress("scheduled", 1, 1)
    evaluation = _evaluate_schedule(
        request, wf, platform, result.schedule, budget,
        check_deadline=check_deadline, publish_progress=publish_progress,
    )
    return ScheduleResponse(
        request_fingerprint=request.fingerprint(),
        algorithm=result.algorithm,
        budget=budget,
        planned_makespan=result.planned_makespan,
        planned_cost=result.planned_vm_cost,
        within_budget_plan=result.within_budget_plan,
        n_vms=result.schedule.n_vms,
        n_tasks=wf.n_tasks,
        workflow_name=wf.name,
        schedule=schedule_to_dict(result.schedule),
        evaluation=evaluation,
        cached=False,
        elapsed_s=time.perf_counter() - started,
    )


def _evaluate_schedule(
    request, wf, platform, schedule, budget,
    *,
    check_deadline=_noop_deadline,
    publish_progress=_noop_progress,
) -> Optional[Dict[str, Any]]:
    """Replay a schedule against ``n_reps`` sampled weight realizations."""
    spec = request.evaluation
    if spec.n_reps <= 0:
        return None
    cap = float("inf") if spec.dc_capacity is None else spec.dc_capacity
    makespans: List[float] = []
    costs: List[float] = []
    n_valid = 0
    reps: List[Dict[str, Any]] = []
    # Progress granularity: ~4 updates per evaluation, never per-rep.
    stride = max(1, spec.n_reps // 4)
    for i in range(spec.n_reps):
        check_deadline()
        run = execute_schedule(
            wf, platform, schedule,
            sample_weights(wf, rng=spec.seed + i),
            dc_capacity=cap, validate=False,
        )
        valid = run.respects_budget(budget)
        n_valid += valid
        makespans.append(run.makespan)
        costs.append(run.total_cost)
        reps.append(
            {
                "seed": spec.seed + i,
                "makespan": run.makespan,
                "cost": run.total_cost,
                "within_budget": valid,
            }
        )
        if (i + 1) % stride == 0 or i + 1 == spec.n_reps:
            publish_progress("evaluating", i + 1, spec.n_reps)
    return {
        "n_reps": spec.n_reps,
        "budget_success_rate": n_valid / spec.n_reps,
        "makespan": _summary(makespans),
        "cost": _summary(costs),
        "reps": reps,
    }


def _warmup(index: int) -> int:
    """Trivial task used to pre-fork the process pool at service start."""
    return index


def _process_compute(request_dict: Dict[str, Any]) -> ScheduleResponse:
    """Worker-process entrypoint for ``--executor process`` (pickle-safe).

    Deadlines and progress are supervised by the parent thread (which
    bounds the worker call itself); the child just computes.
    """
    return compute_response(ScheduleRequest.from_dict(request_dict))


class SchedulingService:
    """Scheduling-as-a-service façade (see module docstring).

    Parameters
    ----------
    max_workers:
        Worker threads for async jobs (default 4).
    cache_size:
        LRU capacity in responses; 0 disables caching entirely.
    cache_ttl:
        Seconds a cached response stays fresh; ``None`` means forever.
    metrics:
        An external :class:`MetricsRegistry` to share; a private one is
        created by default.
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` to archive completed runs
        into; defaults to the process-global ledger (a ``NullLedger``
        unless one was installed), so archiving costs one attribute check
        when disabled.
    events:
        An external :class:`~repro.obs.events.EventBus` to publish job
        lifecycle events on; a private bus is created by default (the SSE
        endpoints subscribe to it).
    max_queue_depth:
        Backpressure limit: when this many jobs are already pending,
        ``submit`` raises :class:`~repro.errors.ServiceOverloadedError`
        (HTTP 429 at the gateway). ``None`` (default) accepts everything.
    job_timeout:
        Per-job wall-clock budget in seconds, enforced cooperatively: the
        evaluation loop checks the deadline between replays and the job
        fails with :class:`~repro.errors.JobTimeoutError` (never retried).
        ``None`` disables the timeout.
    max_retries:
        Extra attempts for a job whose compute raised an *unexpected*
        (non-:class:`~repro.errors.ReproError`) exception — deterministic
        model errors are never retried. 0 (default) disables retries.
    retry_backoff_s:
        Base of the exponential backoff between retries; the actual sleep
        is ``retry_backoff_s × 2^attempt`` scaled by a deterministic
        per-job jitter in [0.5, 1.0].
    executor:
        ``"thread"`` (default) computes on the worker threads;
        ``"process"`` routes each compute into a worker *process* via
        :class:`repro.parallel.WorkerPool`, so CPU-bound refinement runs
        off the GIL; ``"cluster"`` routes computes to remote
        ``repro-exp worker`` nodes via
        :class:`repro.cluster.ClusterPool` (requires ``nodes``). Job
        lifecycle, cache, backpressure, retries, and timeout supervision
        all stay in the parent every way — a crashed worker process or a
        lost node surfaces as a retryable
        :class:`~repro.errors.WorkerCrashError` after the pool's own
        shard retries are exhausted.
    nodes:
        Cluster node list for ``executor="cluster"``:
        ``"host:port,host:port"`` or a sequence of such specs.
    tenants:
        A :class:`~repro.admission.TenantRegistry` with per-tenant rate /
        concurrency / cost-budget policies. Omitted, every request runs
        under the permissive ``default`` tenant (no limits) — the
        pre-admission behaviour.
    admission_aging_s:
        Seconds of queue wait per one-class starvation promotion in the
        admission queue (see :mod:`repro.admission.queue`).
    batching:
        Spec-family batching: requests identical modulo seed /
        ``n_samples`` share one schedule computation and a per-seed
        replication cache (bit-identical results, see
        :mod:`repro.admission.batcher`). Defaults to on for the thread
        executor, off for the process executor.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        cache_size: int = 256,
        cache_ttl: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        ledger: Optional[Any] = None,
        events: Optional[EventBus] = None,
        max_queue_depth: Optional[int] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.5,
        executor: str = "thread",
        nodes: Optional[Any] = None,
        tenants: Optional[Any] = None,
        admission_aging_s: float = 30.0,
        batching: Optional[bool] = None,
        slo_targets: Optional[Sequence[SLOTarget]] = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in EXECUTORS:
            raise ServiceError(
                f"unknown executor {executor!r}; one of {EXECUTORS}"
            )
        if executor == "cluster" and not nodes:
            raise ServiceError(
                "executor='cluster' needs nodes ('host:port,host:port')"
            )
        if cache_size < 0:
            raise ServiceError(f"cache_size must be >= 0, got {cache_size}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise ServiceError(f"job_timeout must be > 0, got {job_timeout}")
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ServiceError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.max_queue_depth = max_queue_depth
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ledger = ledger if ledger is not None else get_ledger()
        self.events = events if events is not None else EventBus()
        if getattr(self.events, "metrics", None) is None:
            # Dropped-event counts surface as repro_events_dropped_total.
            self.events.metrics = self.metrics
        #: Per-stage latency sketches + burn-rate windows (GET /v1/slo).
        self.slo = SLOMonitor(targets=slo_targets)
        if self.ledger.enabled and self.ledger.bus is None:
            # run.recorded events join the job lifecycle stream.
            self.ledger.bus = self.events
        self._cache = (
            LRUCache(cache_size, ttl=cache_ttl) if cache_size else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self.max_workers = max_workers
        self.executor = executor
        self._proc_pool: Optional[Any] = None
        if executor == "process":
            # Fork the worker processes *now*, before the service's own
            # threads get busy — forking from a quiescent parent avoids
            # inheriting locks held mid-operation.
            self._proc_pool = WorkerPool(
                max_workers, metrics=self.metrics, events=self.events
            )
            self._proc_pool.map(_warmup, list(range(max_workers)))
        elif executor == "cluster":
            # Imported lazily so the light thread-executor path never
            # touches the cluster fabric.
            from ..cluster import ClusterPool

            self._proc_pool = ClusterPool(
                nodes, metrics=self.metrics, events=self.events
            )
        self._jobs: Dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._started_at = time.time()
        # Which job the current worker thread is computing for — lets the
        # deep schedule/evaluate path publish job.progress without
        # threading a job id through every signature.
        self._job_context = threading.local()
        # Imported lazily: repro.admission imports service submodules, so
        # a module-level import here would cycle when the admission
        # package is imported first.
        from ..admission import (
            AdmissionController,
            CostEstimator,
            FamilyBatcher,
        )

        self.admission = AdmissionController(
            tenants=tenants,
            estimator=CostEstimator(
                self.ledger if self.ledger.enabled else None
            ),
            max_queue_depth=max_queue_depth,
            aging_s=admission_aging_s,
            metrics=self.metrics,
            events=self.events,
        )
        # Family batching needs the compute in-process, so the process
        # executor always runs unbatched.
        self.batching = executor == "thread" and (
            True if batching is None else bool(batching)
        )
        self._batcher = (
            FamilyBatcher(
                self._family_base, self._family_rep, self._family_assemble
            )
            if self.batching
            else None
        )

    # ------------------------------------------------------------------
    # sync path
    # ------------------------------------------------------------------
    def schedule(self, request: RequestLike) -> ScheduleResponse:
        """Serve one request synchronously (cache-aware, admission-gated).

        Direct (non-job) callers pass the tenant admission gates — rate
        limit and cost budget — without queueing, and their spend is
        reconciled like any job's; a refusal raises
        :class:`~repro.errors.AdmissionRejected`. Worker threads serving
        an already-admitted job skip the gates (their reservation was
        taken at ``submit``).

        Raises :class:`~repro.errors.ServiceClosedError` once the service
        is draining — except for the worker threads finishing already
        accepted jobs, which must be able to complete the drain.
        """
        req = self._coerce(request)
        if getattr(self._job_context, "job_id", None) is not None:
            return self._serve(req)
        self._check_open()
        stages = StageTimings()
        decision = self.admission.admit(
            req, f"sync-{next(self._ids):06d}", enqueue=False, stages=stages
        )
        self._job_context.decision = decision
        self._job_context.stages = stages
        try:
            return self._serve(req)
        except BaseException:
            self.slo.observe_request(
                duration_s=stages.wall_s, success=False,
                stages=stages.stages,
            )
            raise
        finally:
            # No-op when the response reconciled the reservation (the
            # normal path); a compute that raised refunds it here.
            self.admission.release(decision)
            self._job_context.decision = None
            self._job_context.stages = None

    def _serve(self, req: ScheduleRequest) -> ScheduleResponse:
        """Cache-aware compute, admission settlement, ledger archive."""
        self.metrics.incr("requests")
        stages = getattr(self._job_context, "stages", None)
        if self._cache is None:
            response = self._compute(req)
        else:
            key = req.fingerprint()
            cached, was_cached = self._cache.get_or_compute(
                key, lambda: self._compute(req)
            )
            if was_cached:
                self.metrics.incr("cache_hits")
                if stages is not None:
                    # Hit lookup plus any single-flight coalesced wait.
                    stages.mark("cache")
                # Copy: callers may mutate, and the cached original must
                # keep cached=False so first-compute responses stay honest.
                # Cache hits commit tenant spend but add no ledger row.
                response = replace(cached, cached=True)
                admission = self._settle_admission(req, response, stages)
                return self._finish_request(
                    req, response, stages, record=False, admission=admission
                )
            self.metrics.incr("cache_misses")
            response = cached
        admission = self._settle_admission(req, response, stages)
        return self._finish_request(
            req, response, stages, record=True, admission=admission
        )

    def _settle_admission(
        self,
        req: ScheduleRequest,
        response: ScheduleResponse,
        stages: Optional[StageTimings] = None,
    ) -> Optional[Dict[str, Any]]:
        """Commit the current request's reservation against actuals.

        Settles at most once per admission decision (retries re-enter
        here only after a failed attempt, which never settles). Returns
        the admission diagnostics destined for the ledger row, or
        ``None`` when the caller was not admission-tracked.
        """
        decision = getattr(self._job_context, "decision", None)
        try:
            if decision is None:
                return None
            return self.admission.reconcile(
                req,
                decision,
                actual_cost=response.planned_cost,
                actual_duration_s=response.elapsed_s,
            )
        finally:
            if stages is not None:
                stages.mark("reconcile")

    def _finish_request(
        self,
        req: ScheduleRequest,
        response: ScheduleResponse,
        stages: Optional[StageTimings],
        *,
        record: bool,
        admission: Optional[Dict[str, Any]],
    ) -> ScheduleResponse:
        """Close out one served request: stage telemetry, SLO, ledger.

        The returned response carries the stage decomposition; the
        cached original (if any) stays untouched, so every hit gets its
        own per-request timings.
        """
        stage_dict: Optional[Dict[str, Any]] = None
        if stages is not None:
            stage_dict = stages.to_dict()
            for name, seconds in stage_dict["stages"].items():
                self.metrics.observe(f"stage_{name}_seconds", seconds)
            self.slo.observe_request(
                duration_s=stage_dict["wall_s"], success=True,
                stages=stage_dict["stages"],
            )
            response = replace(response, stages=stage_dict)
        if record and self.ledger.enabled:
            self._record_run(
                req, response, admission=admission, stages=stage_dict
            )
        return response

    # ------------------------------------------------------------------
    # async jobs
    # ------------------------------------------------------------------
    def submit(self, request: RequestLike) -> str:
        """Admit and queue one request; returns its job id immediately.

        The request passes the tenant's admission gates first; a refusal
        raises :class:`~repro.errors.AdmissionRejected` with a typed
        reason — ``rate_limited``, ``budget_exhausted`` or ``queue_full``
        (the latter replaces the old ``max_queue_depth`` FIFO
        backpressure; all three surface as
        :class:`~repro.errors.ServiceOverloadedError` to old callers).
        Raises :class:`~repro.errors.ServiceClosedError` once the service
        drains.
        """
        req = self._coerce(request)
        self._check_open()
        job_id = f"job-{next(self._ids):06d}"
        record = JobRecord(
            job_id=job_id,
            state=JobState.PENDING,
            request=req.to_dict(),
            submitted_at=time.time(),
        )
        job = _Job(record)
        job.request = req
        job.future = Future()
        job.stages = StageTimings()
        try:
            job.decision = self.admission.admit(
                req, job_id, stages=job.stages
            )
        except AdmissionRejected:
            self.metrics.incr("jobs_rejected")
            raise
        with self._lock:
            self._jobs[job_id] = job
        self.events.publish(
            "job.queued", job_id=job_id, algorithm=req.algorithm,
            fingerprint=req.fingerprint(), tenant=req.tenant,
            priority=req.priority,
        )
        # One dispatcher per admitted entry; a dispatcher is not married
        # to "its" job — it claims whichever queued entry the admission
        # queue ranks best among tenants with free concurrency slots.
        self._pool.submit(self._dispatch)
        self.metrics.incr("jobs_submitted")
        return job_id

    def _dispatch(self) -> None:
        """One dispatcher pass: claim the best admitted entry, run it.

        Entries cancelled before dispatch leave the queue, so surplus
        dispatchers drain a ``None`` and exit; the dispatcher settles the
        tenant's concurrency slot and resolves the job's future in every
        outcome.
        """
        entry = self.admission.next_entry()
        if entry is None:
            return
        job = self._lookup_job(entry.job_id)
        if job is None or job.future is None:
            # Unreachable in practice (entries are registered right after
            # admission); refund rather than leak the reservation.
            self.admission.tenants.release(entry.tenant, entry.estimated_cost)
            self.admission.release_slot(entry.tenant)
            return
        future = job.future
        if not future.set_running_or_notify_cancel():
            # cancel() won after the entry was popped: the queue withdraw
            # missed it, so the refund happens here — exactly once.
            if job.decision is not None:
                self.admission.release(job.decision)
            self.admission.release_slot(entry.tenant)
            return
        if job.stages is not None:
            # Everything between the admission gates and this claim —
            # queue wait plus dispatch overhead — is the queued stage;
            # entry.waited_s keeps the queue's own precise measurement.
            job.stages.mark("queued")
        self._job_context.decision = job.decision
        self._job_context.stages = job.stages
        self._job_context.queue_waited_s = entry.waited_s
        try:
            response = self._run_job(entry.job_id, job.request)
        except BaseException as exc:
            if job.decision is not None:
                self.admission.release(job.decision)
            self.admission.release_slot(entry.tenant)
            future.set_exception(exc)
            return
        finally:
            self._job_context.decision = None
            self._job_context.stages = None
            self._job_context.queue_waited_s = None
        self.admission.release_slot(entry.tenant)
        future.set_result(response)

    def _lookup_job(self, job_id: str) -> Optional[_Job]:
        """The job for an entry, waiting out the admit/register race.

        ``admit`` enqueues the entry moments before ``submit`` registers
        the job, so a fast foreign dispatcher can pop an entry whose job
        is not yet visible; the window is two statements long, hence the
        tight bounded spin.
        """
        deadline = time.monotonic() + 1.0
        while True:
            with self._lock:
                job = self._jobs.get(job_id)
            if job is not None or time.monotonic() >= deadline:
                return job
            time.sleep(0.001)

    def submit_batch(self, requests: Sequence[RequestLike]) -> List[str]:
        """Queue a batch; returns job ids in request order."""
        if not requests:
            raise ServiceError("submit_batch needs at least one request")
        return [self.submit(req) for req in requests]

    def job(self, job_id: str) -> JobRecord:
        """Snapshot of a job's current state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job {job_id!r}")
            return replace(job.record)

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """Snapshots of all jobs, optionally filtered by state."""
        if state is not None and state not in JobState.ALL:
            raise ServiceError(
                f"unknown job state {state!r}; one of {JobState.ALL}"
            )
        with self._lock:
            records = [replace(j.record) for j in self._jobs.values()]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> ScheduleResponse:
        """Block until a job finishes and return its response.

        Raises :class:`ServiceError` if the job failed or was cancelled,
        and ``TimeoutError`` if ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        future = self._wait_for_future(job_id, deadline)
        remaining = None if deadline is None else deadline - time.monotonic()
        try:
            return future.result(timeout=remaining)
        except ReproError:
            raise
        except FuturesCancelledError:
            raise ServiceError(f"job {job_id} was cancelled") from None
        except FuturesTimeoutError:
            raise TimeoutError(
                f"job {job_id} did not finish within {timeout}s"
            ) from None
        except KeyboardInterrupt:
            raise  # the *caller* was interrupted; don't mask it
        except BaseException as exc:  # a non-repro bug in the compute path
            # SystemExit and friends raised by a job are contained in
            # _run_job; what reaches the caller here is always wrapped.
            raise ServiceError(f"job {job_id} failed: {exc}") from exc

    def _wait_for_future(
        self, job_id: str, deadline: Optional[float]
    ) -> "Future[ScheduleResponse]":
        """The job's future, waiting out the submit()/cancel() races.

        A job can briefly exist without a future (``submit`` publishes
        ``job.queued`` before handing the callable to the pool) — and a
        job cancelled in that window never gets one.
        """
        while True:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None:
                    raise JobNotFoundError(f"no such job {job_id!r}")
                if job.future is not None:
                    return job.future
                if job.record.state == JobState.CANCELLED:
                    raise ServiceError(f"job {job_id} was cancelled")
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} was never started")
            time.sleep(0.001)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; True when it was cancelled."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job {job_id!r}")
            future = job.future
            if future is None:
                # Defensive: every submitted job gets a future before it
                # is registered, so this branch only guards torn state.
                if job.record.state != JobState.PENDING:
                    return False
                job.record.state = JobState.CANCELLED
                job.record.finished_at = time.time()
            elif future.cancel():
                job.record.state = JobState.CANCELLED
                job.record.finished_at = time.time()
            else:
                return False
        # Refund responsibility: if this call removed the queue entry, no
        # dispatcher will ever claim it and the withdraw refund is final;
        # otherwise a dispatcher already popped it and its failed
        # set_running_or_notify_cancel() performs the (single) refund.
        if self.admission.withdraw(job_id) and job.decision is not None:
            job.decision.reconciled = True
        self.events.publish(
            "job.finished", job_id=job_id, state=JobState.CANCELLED
        )
        self.metrics.incr("jobs_cancelled")
        return True

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted job left the pending/running states."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            futures = [
                j.future for j in self._jobs.values() if j.future is not None
            ]
        for future in futures:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError("wait_all timed out")
            try:
                future.result(timeout=remaining)
            except FuturesTimeoutError:
                raise TimeoutError("wait_all timed out") from None
            except FuturesCancelledError:
                pass  # cancellation is a terminal state, not a failure
            except Exception:
                pass  # failures are surfaced via job()/result(), not here

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Operational snapshot: jobs by state, cache, metric summaries.

        Also asserts the state-machine invariant: a job whose future has
        completed must be in a terminal state (worker threads set the
        state under the service lock *before* their future resolves), so a
        violation means containment in ``_run_job`` is broken — better a
        loud :class:`~repro.errors.ServiceError` here than a job stuck
        "running" forever.
        """
        by_state = {state: 0 for state in JobState.ALL}
        stuck: List[str] = []
        with self._lock:
            for job in self._jobs.values():
                by_state[job.record.state] += 1
                if (
                    job.future is not None
                    and job.future.done()
                    and not job.future.cancelled()
                    and job.record.state in (JobState.PENDING, JobState.RUNNING)
                ):
                    stuck.append(job.record.job_id)
        if stuck:
            raise ServiceError(
                f"job state invariant violated: finished futures with "
                f"non-terminal records: {stuck[:5]}"
            )
        self._sync_cache_metrics()
        out: Dict[str, Any] = {
            "uptime_s": time.time() - self._started_at,
            "executor": self.executor,
            "workers": (
                None if self._proc_pool is None
                else self._proc_pool.worker_stats()
            ),
            "cluster_nodes": (
                self._proc_pool.alive_count
                if self.executor == "cluster" else None
            ),
            "jobs": by_state,
            "cache": None if self._cache is None else self._cache.stats().to_dict(),
            "metrics": self.metrics.snapshot(),
            "schedulers": available_schedulers(),
            "ledger": {
                "enabled": self.ledger.enabled,
                "path": self.ledger.path,
                "n_runs": self.ledger.count(),
            },
            "events": {
                "last_seq": self.events.last_seq,
                "n_subscribers": self.events.n_subscribers,
                "dropped_total": getattr(self.events, "dropped_total", 0),
            },
            "slo": self.slo.snapshot(),
            "admission": self.admission.stats(),
            "batching": (
                None if self._batcher is None else self._batcher.stats()
            ),
        }
        return out

    def health(self) -> Dict[str, Any]:
        """Readiness snapshot backing ``GET /v1/healthz``.

        ``ready`` is the single go/no-go bit (drain started, ledger
        unwritable, or every worker process / cluster node dead ⇒ not
        ready); the rest is the evidence: the active executor backend,
        the live worker/node count, queue depth, in-flight jobs, the age
        of the stalest worker heartbeat, and whether the ledger accepts
        writes. ``executor`` + ``worker_count`` let a load balancer
        distinguish a degraded cluster (some nodes lost, still ready)
        from a healthy single-node deployment. Deliberately cheaper than
        :meth:`stats` — load-generator warmup gates and orchestrator
        probes may poll it at high frequency.
        """
        with self._lock:
            draining = self._closed
            inflight = sum(
                1 for j in self._jobs.values()
                if j.record.state == JobState.RUNNING
            )
        queue_stats = self.admission.queue.stats()
        heartbeat_age: Optional[float] = None
        workers_alive = True
        # Thread executor: the pool's threads cannot die independently,
        # so the configured size is the live count.
        worker_count = self.max_workers
        if self._proc_pool is not None:
            worker_stats = self._proc_pool.worker_stats()
            if self.executor == "cluster":
                # A lost node keeps its (dead) entry for observability;
                # only nodes still believed alive count toward readiness.
                worker_stats = {
                    addr: s for addr, s in worker_stats.items()
                    if s.get("alive", True)
                }
            worker_count = len(worker_stats)
            workers_alive = bool(worker_stats)
            if worker_stats:
                now = time.time()
                heartbeat_age = max(
                    now - s.get("last_seen", now)
                    for s in worker_stats.values()
                )
        ledger_writable = (
            not self.ledger.enabled or self.ledger.writable()
        )
        return {
            "ready": not draining and ledger_writable and workers_alive,
            "status": "draining" if draining else "ok",
            "draining": draining,
            "uptime_s": time.time() - self._started_at,
            "executor": self.executor,
            "worker_count": worker_count,
            "queue_depth": queue_stats["depth"],
            "inflight_jobs": inflight,
            "worker_heartbeat_age_s": heartbeat_age,
            "workers_alive": workers_alive,
            "ledger": {
                "enabled": self.ledger.enabled,
                "writable": ledger_writable,
            },
        }

    def _sync_cache_metrics(self) -> None:
        """Mirror the cache's own monotonic stats into the registry.

        The engine's per-request ``cache_hits``/``cache_misses`` counters
        only see the ``schedule()`` path; the cache itself also counts
        evictions and TTL expirations. Snapping the registry counters to
        the cache's totals keeps ``repro_cache_*_total`` authoritative in
        the Prometheus exposition.
        """
        if self._cache is None:
            return
        stats = self._cache.stats()
        self.metrics.set_counter("cache_hits", stats.hits)
        self.metrics.set_counter("cache_misses", stats.misses)
        self.metrics.set_counter("cache_evictions", stats.evictions)
        self.metrics.set_counter("cache_expirations", stats.expirations)
        self.metrics.set_counter("cache_coalesced", stats.coalesced)

    def clear_cache(self) -> None:
        """Drop all cached responses (no-op when caching is disabled)."""
        if self._cache is not None:
            self._cache.clear()

    def close(self, *, wait: bool = True) -> None:
        """Drain and shut the worker pool down; idempotent.

        New work is refused immediately (``ServiceClosedError``); with
        ``wait=True`` (the default graceful drain) every already-accepted
        job runs to completion before the pool stops. ``service.draining``
        / ``service.closed`` events bracket the drain on the bus.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
            in_flight = sum(
                1 for j in self._jobs.values()
                if j.record.state in (JobState.PENDING, JobState.RUNNING)
            )
        if first:
            self.events.publish(
                "service.draining", in_flight=in_flight, wait=wait
            )
        self._pool.shutdown(wait=wait)
        if self._proc_pool is not None:
            self._proc_pool.close()
        if first:
            self.events.publish("service.closed")

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("service is draining/closed")

    @staticmethod
    def _coerce(request: RequestLike) -> ScheduleRequest:
        if isinstance(request, ScheduleRequest):
            return request
        return ScheduleRequest.from_dict(request)

    def _retry_delay(self, job_id: str, attempt: int) -> float:
        """Exponential backoff with deterministic per-job jitter."""
        jitter = random.Random(f"{job_id}:{attempt}").uniform(0.5, 1.0)
        return self.retry_backoff_s * (2.0 ** attempt) * jitter

    def _run_job(self, job_id: str, request: ScheduleRequest) -> ScheduleResponse:
        with self._lock:
            record = self._jobs[job_id].record
            if record.state == JobState.CANCELLED:
                # cancel() won the submit race; the pool picked up a
                # corpse. Surface it as a cancellation to result().
                raise FuturesCancelledError()
            record.state = JobState.RUNNING
            record.started_at = time.time()
        waited = getattr(self._job_context, "queue_waited_s", None)
        if waited is not None:
            self.events.publish(
                "job.started", job_id=job_id, queue_waited_s=waited
            )
        else:
            self.events.publish("job.started", job_id=job_id)
        self._job_context.job_id = job_id
        self._job_context.deadline = (
            None if self.job_timeout is None
            else time.monotonic() + self.job_timeout
        )
        try:
            attempt = 0
            while True:
                with self._lock:
                    record.attempts = attempt + 1
                try:
                    self._check_job_deadline()
                    response = self.schedule(request)
                    break
                except Exception as exc:
                    # ReproError (bad spec, infeasible, timeout) is
                    # deterministic — retrying cannot help. Anything else
                    # is treated as transient, up to max_retries times.
                    if isinstance(exc, ReproError) or attempt >= self.max_retries:
                        raise
                    delay = self._retry_delay(job_id, attempt)
                    attempt += 1
                    self.events.publish(
                        "job.retried", job_id=job_id, attempt=attempt,
                        max_retries=self.max_retries, error=str(exc),
                        backoff_s=delay,
                    )
                    self.metrics.incr("jobs_retried")
                    if delay > 0:
                        time.sleep(delay)
        except BaseException as exc:
            # Containment: *nothing* a job raises may corrupt the worker
            # pool or leave the record non-terminal — KeyboardInterrupt
            # and friends included.
            tb = traceback.format_exc()
            with self._lock:
                record.state = JobState.FAILED
                record.error = str(exc) or type(exc).__name__
                record.traceback = tb
                record.finished_at = time.time()
            self.events.publish(
                "job.failed", job_id=job_id, error=record.error,
                exc_type=type(exc).__name__, attempts=record.attempts,
            )
            self.events.publish(
                "job.finished", job_id=job_id, state=JobState.FAILED,
                error=record.error,
            )
            stages = getattr(self._job_context, "stages", None)
            self.slo.observe_request(
                duration_s=stages.wall_s if stages is not None else 0.0,
                success=False,
                stages=stages.stages if stages is not None else None,
            )
            self.metrics.incr("jobs_failed")
            if isinstance(exc, JobTimeoutError):
                self.metrics.incr("jobs_timed_out")
            raise
        finally:
            self._job_context.job_id = None
            self._job_context.deadline = None
        with self._lock:
            record.state = JobState.DONE
            record.response = response
            record.finished_at = time.time()
        finished_data: Dict[str, Any] = {
            "job_id": job_id, "state": JobState.DONE,
            "cached": response.cached, "elapsed_s": response.elapsed_s,
        }
        if response.stages is not None:
            finished_data["stages"] = response.stages["stages"]
            finished_data["wall_s"] = response.stages["wall_s"]
        self.events.publish("job.finished", **finished_data)
        self.metrics.incr("jobs_done")
        return response

    def _check_job_deadline(self) -> None:
        """Cooperative per-job timeout (checked between evaluation reps)."""
        deadline = getattr(self._job_context, "deadline", None)
        if deadline is not None and time.monotonic() > deadline:
            raise JobTimeoutError(
                f"job exceeded its {self.job_timeout}s timeout"
            )

    def _compute(self, request: ScheduleRequest) -> ScheduleResponse:
        started = time.perf_counter()
        tracer = get_tracer()
        attrs = (
            {"algorithm": request.algorithm,
             "fingerprint": request.fingerprint(),
             "executor": self.executor}
            if tracer.enabled else {}
        )
        with self.metrics.timer("schedule_latency_s"), tracer.span(
            "service.compute", **attrs
        ):
            if self._proc_pool is not None:
                response = self._compute_in_process(request)
                stage = "execute"
            elif self._batcher is not None:
                if self._batcher.served_batched(request):
                    self.metrics.incr("admission_batched")
                response = self._batcher.compute(request)
                stage = "batched"
            else:
                response = compute_response(
                    request,
                    check_deadline=self._check_job_deadline,
                    publish_progress=self._publish_progress,
                )
                stage = "execute"
        stages = getattr(self._job_context, "stages", None)
        if stages is not None:
            stages.mark(stage)
        evaluation = response.evaluation
        if evaluation:
            self.metrics.incr("evaluation_reps", evaluation["n_reps"])
        return replace(response, elapsed_s=time.perf_counter() - started)

    def _compute_in_process(self, request: ScheduleRequest) -> ScheduleResponse:
        """Route one compute into the process pool, supervised from here.

        The child cannot check the cooperative deadline, so the parent
        bounds the worker call with the job's remaining budget and maps a
        pool timeout onto the same :class:`~repro.errors.JobTimeoutError`
        the thread path raises. Worker crashes surface as
        :class:`~repro.errors.WorkerCrashError` (not a ``ReproError``), so
        the job retry loop treats them as transient.
        """
        deadline = getattr(self._job_context, "deadline", None)
        remaining: Optional[float] = None
        if deadline is not None:
            remaining = max(deadline - time.monotonic(), 0.001)
        self._publish_progress("dispatched", 1, 1)
        try:
            response = self._proc_pool.run(
                _process_compute, request.to_dict(), timeout=remaining
            )
        except TimeoutError:
            raise JobTimeoutError(
                f"job exceeded its {self.job_timeout}s timeout "
                f"(process executor)"
            ) from None
        evaluation = response.evaluation or {}
        n_reps = int(evaluation.get("n_reps", 0))
        if n_reps:
            self._publish_progress("evaluating", n_reps, n_reps)
        return response

    # ------------------------------------------------------------------
    # spec-family batching callables (see repro.admission.batcher)
    # ------------------------------------------------------------------
    def _family_base(self, request: ScheduleRequest) -> "_FamilyBase":
        """Resolve + schedule once for a whole spec family.

        Mirrors the first half of :func:`compute_response` exactly: same
        resolution, same scheduler call, same error wrapping — so a
        batched response is bit-identical to an unbatched one.
        """
        wf = request.workflow.resolve()
        platform = request.platform.resolve()
        budget = request.budget.resolve(wf, platform)
        try:
            result = make_scheduler(request.algorithm).schedule(
                wf, platform, budget
            )
        except ReproError as exc:
            raise ServiceError(
                f"{request.algorithm} failed on "
                f"{wf.name or 'workflow'}: {exc}"
            ) from exc
        self._publish_progress("scheduled", 1, 1)
        spec = request.evaluation
        cap = float("inf") if spec.dc_capacity is None else spec.dc_capacity
        return _FamilyBase(
            wf=wf, platform=platform, budget=budget, result=result, cap=cap
        )

    def _family_rep(self, base: "_FamilyBase", seed: int) -> Dict[str, Any]:
        """One evaluation replication, a pure function of (family, seed).

        The PR 5 shard-plan contract — replication ``i`` samples weights
        from ``evaluation.seed + i`` alone — is what lets requests with
        overlapping seed ranges share these records bit-for-bit.
        """
        self._check_job_deadline()
        run = execute_schedule(
            base.wf, base.platform, base.result.schedule,
            sample_weights(base.wf, rng=seed),
            dc_capacity=base.cap, validate=False,
        )
        valid = run.respects_budget(base.budget)
        return {
            "seed": seed,
            "makespan": run.makespan,
            "cost": run.total_cost,
            "within_budget": valid,
        }

    def _family_assemble(
        self,
        base: "_FamilyBase",
        reps: List[Dict[str, Any]],
        request: ScheduleRequest,
    ) -> ScheduleResponse:
        """Fold shared family parts into this request's response.

        Reconstructs exactly what :func:`compute_response` builds
        (``elapsed_s`` excepted — the caller stamps wall time over it
        either way); replication dicts are copied so callers mutating a
        response cannot corrupt the shared cache.
        """
        spec = request.evaluation
        evaluation: Optional[Dict[str, Any]] = None
        if spec.n_reps > 0:
            makespans = [rep["makespan"] for rep in reps]
            costs = [rep["cost"] for rep in reps]
            n_valid = sum(1 for rep in reps if rep["within_budget"])
            evaluation = {
                "n_reps": spec.n_reps,
                "budget_success_rate": n_valid / spec.n_reps,
                "makespan": _summary(makespans),
                "cost": _summary(costs),
                "reps": [dict(rep) for rep in reps],
            }
            self._publish_progress("evaluating", spec.n_reps, spec.n_reps)
        return ScheduleResponse(
            request_fingerprint=request.fingerprint(),
            algorithm=base.result.algorithm,
            budget=base.budget,
            planned_makespan=base.result.planned_makespan,
            planned_cost=base.result.planned_vm_cost,
            within_budget_plan=base.result.within_budget_plan,
            n_vms=base.result.schedule.n_vms,
            n_tasks=base.wf.n_tasks,
            workflow_name=base.wf.name,
            schedule=schedule_to_dict(base.result.schedule),
            evaluation=evaluation,
            cached=False,
            elapsed_s=0.0,
        )

    def _record_run(
        self,
        request: ScheduleRequest,
        response: ScheduleResponse,
        *,
        admission: Optional[Dict[str, Any]] = None,
        stages: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Archive one freshly computed response into the ledger.

        ``admission`` carries the reconciled estimate-vs-actual
        diagnostics (tenant, priority, estimate source, relative errors)
        that ``repro-exp ledger estimate-error`` aggregates; ``stages``
        is the request's wall-clock stage decomposition
        (``extra["stages"]``, consumed by ``repro-exp slo --db``).
        """
        evaluation = response.evaluation or {}
        makespans = [
            rep["makespan"] for rep in (evaluation.get("reps") or [])
        ]
        extra: Dict[str, Any] = (
            {"makespan_stats": ShardStats.of(makespans).to_dict()}
            if makespans else {}
        )
        if admission is not None:
            extra["admission"] = admission
        if stages is not None:
            extra["stages"] = stages
        row = RunRow(
            source="service",
            fingerprint=response.request_fingerprint,
            workflow=response.workflow_name,
            family=request.workflow.family or "",
            n_tasks=response.n_tasks,
            algorithm=response.algorithm,
            budget=response.budget,
            sigma_ratio=request.workflow.sigma_ratio,
            planned_makespan=response.planned_makespan,
            planned_cost=response.planned_cost,
            within_budget_plan=response.within_budget_plan,
            sim_makespan=(evaluation.get("makespan") or {}).get("mean"),
            sim_cost=(evaluation.get("cost") or {}).get("mean"),
            success_rate=evaluation.get("budget_success_rate"),
            n_reps=int(evaluation.get("n_reps", 0)),
            n_vms=response.n_vms,
            elapsed_s=response.elapsed_s,
            trace_id=getattr(self._job_context, "job_id", None) or "",
            extra=extra,
        )
        try:
            self.ledger.record(row)
        except Exception:
            # Archiving must never fail a request; surface via metrics.
            self.metrics.incr("ledger_errors")

    def _publish_progress(self, stage: str, done: int, total: int) -> None:
        job_id = getattr(self._job_context, "job_id", None)
        if job_id is not None:
            self.events.publish(
                "job.progress", job_id=job_id, stage=stage,
                done=done, total=total,
            )

def _summary(values: List[float]) -> Dict[str, float]:
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p95": quantile(values, 0.95),
    }
