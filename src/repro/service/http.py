"""Stdlib-only HTTP/JSON gateway in front of :class:`SchedulingService`.

No web framework — ``http.server.ThreadingHTTPServer`` plus a small JSON
router, so the gateway works anywhere the library does. Endpoints
(all under ``/v1``):

====================  ======================================================
``GET  /v1/healthz``     liveness + uptime
``GET  /v1/schedulers``  registry names accepted in requests
``GET  /v1/metrics``     cache / job / latency snapshot
``POST /v1/schedule``    synchronous scheduling; body = one request dict
``POST /v1/jobs``        async submit; body = one request or an array
``GET  /v1/jobs``        all job snapshots (``?state=`` filters)
``GET  /v1/jobs/<id>``   one job snapshot (response embedded when done)
``DELETE /v1/jobs/<id>`` cancel a pending job
====================  ======================================================

``GET /v1/metrics`` defaults to the JSON snapshot; append
``?format=prometheus`` for text exposition scrapable by Prometheus.

Validation failures map to 400, unknown routes/jobs to 404, everything
else to 500, always with a JSON ``{"error": ...}`` body. Every request is
tagged with a fresh trace id, echoed in the ``X-Trace-Id`` response
header and the structured access log line (``repro.service.http``
logger — enable with :func:`repro.obs.logging.configure_logging` or the
``repro-exp serve --log-level`` flag). Use :func:`start_gateway` for an
embedded server (tests, notebooks) and :func:`serve` to block a process
on it (the ``repro-exp serve`` command).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import JobNotFoundError, ServiceError
from ..obs.logging import configure_logging, get_logger
from ..obs.prometheus import render_prometheus
from .engine import SchedulingService
from .spec import parse_requests

__all__ = ["ServiceGateway", "start_gateway", "serve"]

_MAX_BODY_BYTES = 32 * 1024 * 1024  # inline DAX documents can be large

_access_log = get_logger("service.http")


class _PlainText:
    """Marker for routes that answer text instead of JSON."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str = "text/plain; version=0.0.4; charset=utf-8") -> None:
        self.text = text
        self.content_type = content_type


def _prometheus_gauges(stats: Dict[str, Any]) -> Dict[str, float]:
    """Flatten service stats into gauge metrics for the exposition."""
    gauges: Dict[str, float] = {"uptime_seconds": stats["uptime_s"]}
    for state, n in stats.get("jobs", {}).items():
        gauges[f"jobs_{state}"] = n
    cache = stats.get("cache")
    if cache:
        for key in ("hits", "misses", "evictions", "expirations", "hit_rate"):
            if key in cache:
                gauges[f"cache_{key}"] = cache[key]
    return gauges


class _Handler(BaseHTTPRequestHandler):
    # Set by ServiceGateway when the server is built.
    service: SchedulingService = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, *args: Any) -> None:  # pragma: no cover - quiet
        pass

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        trace_id = uuid.uuid4().hex[:16]
        started = time.perf_counter()
        try:
            status, payload = self._route(method)
        except ServiceError as exc:
            status_code = 404 if isinstance(exc, JobNotFoundError) else 400
            status, payload = status_code, {"error": str(exc),
                                            "trace_id": trace_id}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {exc}",
                                    "trace_id": trace_id}
        if isinstance(payload, _PlainText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)
        _access_log.info(
            "access",
            extra={
                "fields": {
                    "method": method,
                    "path": self.path,
                    "status": status,
                    "duration_ms": round(
                        (time.perf_counter() - started) * 1e3, 3
                    ),
                    "trace_id": trace_id,
                }
            },
        )

    def _route(self, method: str) -> Tuple[int, Any]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        if not parts or parts[0] != "v1":
            return 404, {"error": f"unknown route {parsed.path!r}"}
        tail = parts[1:]

        if method == "GET" and tail == ["healthz"]:
            return 200, {"status": "ok", "uptime_s": self.service.stats()["uptime_s"]}
        if method == "GET" and tail == ["schedulers"]:
            return 200, {"schedulers": self.service.stats()["schedulers"]}
        if method == "GET" and tail == ["metrics"]:
            stats = self.service.stats()
            fmt = query.get("format", "json")
            if fmt == "prometheus":
                text = render_prometheus(
                    stats["metrics"], gauges=_prometheus_gauges(stats)
                )
                return 200, _PlainText(text)
            if fmt != "json":
                raise ServiceError(
                    f"unknown metrics format {fmt!r}; 'json' or 'prometheus'"
                )
            return 200, stats
        if method == "POST" and tail == ["schedule"]:
            requests = parse_requests(self._read_json())
            if len(requests) != 1:
                raise ServiceError(
                    "POST /v1/schedule takes exactly one request; "
                    "use POST /v1/jobs for batches"
                )
            return 200, self.service.schedule(requests[0]).to_dict()
        if method == "POST" and tail == ["jobs"]:
            requests = parse_requests(self._read_json())
            job_ids = self.service.submit_batch(requests)
            return 202, {"job_ids": job_ids}
        if method == "GET" and tail == ["jobs"]:
            records = self.service.jobs(state=query.get("state"))
            return 200, {
                "jobs": [r.to_dict(include_response=False) for r in records]
            }
        if len(tail) == 2 and tail[0] == "jobs":
            job_id = tail[1]
            if method == "GET":
                return 200, self.service.job(job_id).to_dict()
            if method == "DELETE":
                cancelled = self.service.cancel(job_id)
                return 200, {"job_id": job_id, "cancelled": cancelled}
        return 404, {"error": f"unknown route {method} {parsed.path!r}"}

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body is empty")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc


class _Server(ThreadingHTTPServer):
    # The http.server default backlog of 5 drops connections under bursty
    # concurrent traffic (observed as client-side ECONNRESET at ~32
    # simultaneous POSTs); raise it to absorb accept spikes.
    request_queue_size = 128
    daemon_threads = True


class ServiceGateway:
    """An embeddable HTTP server bound to one :class:`SchedulingService`.

    The server thread is a daemon; call :meth:`shutdown` (or use the
    context manager) for a clean stop. ``port=0`` picks a free port —
    read it back from :attr:`address`.
    """

    def __init__(
        self,
        service: SchedulingService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("_BoundHandler", (_Handler,), {"service": service})
        self._server = _Server((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound."""
        return self._server.server_address[0], self._server.server_port

    @property
    def url(self) -> str:
        """Base URL of the bound server, e.g. ``http://127.0.0.1:8080``."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceGateway":
        """Serve in a background daemon thread; returns self."""
        if self._thread is not None:
            raise ServiceError("gateway already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until shutdown)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, close the socket, join the server thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def start_gateway(
    service: Optional[SchedulingService] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs: Any,
) -> ServiceGateway:
    """Start a background gateway; builds a service when none is given."""
    if service is None:
        service = SchedulingService(**service_kwargs)
    return ServiceGateway(service, host=host, port=port).start()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_workers: int = 4,
    cache_size: int = 256,
    cache_ttl: Optional[float] = None,
    log_level: str = "info",
    log_json: bool = False,
) -> None:  # pragma: no cover - blocking entry point, exercised via CLI
    """Run a gateway in the foreground until interrupted."""
    configure_logging(level=log_level, json_mode=log_json)
    service = SchedulingService(
        max_workers=max_workers, cache_size=cache_size, cache_ttl=cache_ttl
    )
    gateway = ServiceGateway(service, host=host, port=port)
    print(f"repro scheduling service listening on {gateway.url}")
    print("endpoints: /v1/healthz /v1/schedulers /v1/metrics "
          "/v1/schedule /v1/jobs  (metrics?format=prometheus)")
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        gateway.shutdown()
        service.close()
