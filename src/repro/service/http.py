"""Stdlib-only HTTP/JSON gateway in front of :class:`SchedulingService`.

No web framework — ``http.server.ThreadingHTTPServer`` plus a small JSON
router, so the gateway works anywhere the library does. Endpoints
(all under ``/v1``):

==============================  ==============================================
``GET  /v1/healthz``               liveness + uptime
``GET  /v1/schedulers``            registry names accepted in requests
``GET  /v1/metrics``               cache / job / latency snapshot
``POST /v1/schedule``              synchronous scheduling; body = one request
``POST /v1/jobs``                  async submit; body = one request or array
``GET  /v1/jobs``                  all job snapshots (``?state=`` filters)
``GET  /v1/jobs/<id>``             one job snapshot (response when done)
``DELETE /v1/jobs/<id>``           cancel a pending job
``GET  /v1/jobs/<id>/events``      SSE stream of one job's lifecycle
``GET  /v1/events``                SSE stream of all bus events
``GET  /v1/runs``                  archived runs from the ledger (filters)
``GET  /v1/runs/<id>``             one archived run
``GET  /v1/tenants``               tenant policies + live budget accounting
``GET  /v1/admission``             admission queue / estimator / batching stats
==============================  ==============================================

``POST /v1/schedule`` and ``POST /v1/jobs`` honour two optional request
headers: ``X-Tenant`` bills the work to a named tenant (see
``docs/ADMISSION.md``; unknown tenants fall back to the default policy)
and ``X-Priority`` picks its admission class (``interactive`` / ``batch``
/ ``best_effort``). An admission refusal answers 429 — or 402 when the
tenant's cost budget is exhausted — with a typed JSON body
(``reason``, ``tenant``, ``queue_depth``, ``retry_after_s``) and a
``Retry-After`` header.

``GET /v1/metrics`` defaults to the JSON snapshot; append
``?format=prometheus`` for text exposition scrapable by Prometheus.

The SSE endpoints speak ``text/event-stream``: one frame per event
(``id:`` = bus sequence number, ``event:`` = type, ``data:`` = JSON
payload), ``: keep-alive`` comments while idle, and a clean close when
the stream ends. ``/v1/jobs/<id>/events`` replays the job's buffered
history first — a finished job yields its whole ``queued → started →
finished`` lifecycle immediately — and closes after the terminal event.
``/v1/events`` streams until ``?timeout=`` seconds elapse (default 30);
``?types=a,b`` filters, ``?replay=n`` prepends the last *n* buffered
events. ``/v1/runs`` requires a ledger-enabled service (``repro-exp
serve --ledger runs.db``); without one it answers with an empty archive
and ``"enabled": false``.

Validation failures map to 400, unknown routes/jobs to 404, a full job
queue to 429 and a draining service to 503 (both with a ``Retry-After``
header), everything else to 500, always with a JSON ``{"error": ...}``
body. Every request is
tagged with a fresh trace id, echoed in the ``X-Trace-Id`` response
header and the structured access log line (``repro.service.http``
logger — enable with :func:`repro.obs.logging.configure_logging` or the
``repro-exp serve --log-level`` flag). Use :func:`start_gateway` for an
embedded server (tests, notebooks) and :func:`serve` to block a process
on it (the ``repro-exp serve`` command).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from dataclasses import replace

from ..errors import (
    AdmissionRejected,
    JobNotFoundError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..obs.events import JOB_EVENT_TYPES, RUN_RECORDED, EventBus
from ..obs.logging import configure_logging, get_logger
from ..obs.prometheus import render_prometheus
from .engine import SchedulingService
from .spec import DEFAULT_PRIORITY, DEFAULT_TENANT, parse_requests

__all__ = ["ServiceGateway", "start_gateway", "serve"]

_MAX_BODY_BYTES = 32 * 1024 * 1024  # inline DAX documents can be large

_access_log = get_logger("service.http")


class _PlainText:
    """Marker for routes that answer text instead of JSON."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str = "text/plain; version=0.0.4; charset=utf-8") -> None:
        self.text = text
        self.content_type = content_type


class _SSEStream:
    """Marker for routes that stream Server-Sent-Events frames.

    ``frames`` yields ready-to-send SSE strings; the handler writes and
    flushes them one by one, then closes the connection.
    """

    __slots__ = ("frames",)

    def __init__(self, frames: Any) -> None:
        self.frames = frames


#: Bounds on the ``?timeout=`` query of the SSE endpoints (seconds).
_SSE_DEFAULT_TIMEOUT = 30.0
_SSE_MAX_TIMEOUT = 3600.0
#: Poll interval while an SSE stream is idle (drives keep-alive comments).
_SSE_POLL_S = 1.0


def _sse_timeout(query: Dict[str, str]) -> float:
    try:
        timeout = float(query.get("timeout", _SSE_DEFAULT_TIMEOUT))
    except ValueError:
        raise ServiceError(f"invalid timeout {query['timeout']!r}") from None
    if timeout <= 0:
        raise ServiceError(f"timeout must be > 0, got {timeout}")
    return min(timeout, _SSE_MAX_TIMEOUT)


def _job_event_frames(service: SchedulingService, job_id: str, timeout: float):
    """SSE frames of one job's lifecycle: buffered history, then live.

    Subscribes *before* replaying history so no event can fall between
    the two phases; duplicates are dropped by sequence number. Ends (and
    the connection closes) right after the job's terminal
    ``job.finished`` event, or when ``timeout`` elapses.
    """
    bus = service.events
    types = JOB_EVENT_TYPES + (RUN_RECORDED,)

    def matches(ev) -> bool:
        data = ev.data
        return data.get("job_id") == job_id or data.get("trace_id") == job_id

    sub = bus.subscribe(types=types)
    try:
        last_seq = 0
        for ev in bus.history(types=types, match=matches):
            yield ev.to_sse()
            last_seq = ev.seq
            if ev.type == "job.finished":
                return
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                yield ": timeout\n\n"
                return
            ev = sub.get(timeout=min(remaining, _SSE_POLL_S))
            if ev is None:
                yield ": keep-alive\n\n"
                continue
            if ev.seq <= last_seq or not matches(ev):
                continue
            yield ev.to_sse()
            if ev.type == "job.finished":
                return
    finally:
        sub.close()


def _bus_event_frames(service: SchedulingService, types, replay: int,
                      timeout: float):
    """SSE frames of the whole event bus, with optional replay/filtering."""
    bus = service.events
    sub = bus.subscribe(types=types)
    try:
        last_seq = 0
        if replay > 0:
            for ev in bus.history(types=types, limit=replay):
                yield ev.to_sse()
                last_seq = ev.seq
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                yield ": timeout\n\n"
                return
            ev = sub.get(timeout=min(remaining, _SSE_POLL_S))
            if ev is None:
                yield ": keep-alive\n\n"
                continue
            if ev.seq <= last_seq:
                continue
            yield ev.to_sse()
    finally:
        sub.close()


def _prometheus_gauges(stats: Dict[str, Any]) -> Dict[str, float]:
    """Flatten service stats into gauge metrics for the exposition."""
    gauges: Dict[str, float] = {"uptime_seconds": stats["uptime_s"]}
    for state, n in stats.get("jobs", {}).items():
        gauges[f"jobs_{state}"] = n
    cache = stats.get("cache")
    if cache:
        for key in ("hits", "misses", "evictions", "expirations", "hit_rate"):
            if key in cache:
                gauges[f"cache_{key}"] = cache[key]
    # Queue depth per priority class and in-flight jobs are *sampled on
    # every scrape* (not just at event edges), so a stalled queue shows
    # its true depth even when no admission event has fired recently.
    admission = stats.get("admission") or {}
    queue = admission.get("queue") or {}
    for cls, depth in sorted((queue.get("by_priority") or {}).items()):
        gauges[f'queue_depth{{class="{cls}"}}'] = depth
    if "depth" in queue:
        gauges["queue_depth_total"] = queue["depth"]
    if "oldest_wait_s" in queue:
        gauges["queue_oldest_wait_seconds"] = queue["oldest_wait_s"]
    gauges["inflight_jobs"] = stats.get("jobs", {}).get("running", 0)
    # Live cluster node count (sampled per scrape; reassignments ride in
    # the regular counter snapshot as repro_cluster_reassignments_total).
    if stats.get("cluster_nodes") is not None:
        gauges["cluster_nodes"] = stats["cluster_nodes"]
    slo = stats.get("slo")
    if slo:
        # Streaming percentiles per lifecycle stage (from the mergeable
        # quantile sketches) plus the end-to-end "request" series.
        for stage, pcts in slo.get("stages", {}).items():
            for key in ("p50", "p95", "p99"):
                if key in pcts:
                    gauges[f"slo_stage_{stage}_{key}_seconds"] = pcts[key]
        for target in slo.get("targets", []):
            name = target.get("name")
            windows = target.get("windows", {})
            for label, window in windows.items():
                gauges[f"slo_burn_rate_{name}_{label}"] = (
                    window.get("burn_rate", 0.0)
                )
    return gauges


class _Handler(BaseHTTPRequestHandler):
    # Set by ServiceGateway when the server is built.
    service: SchedulingService = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, *args: Any) -> None:  # pragma: no cover - quiet
        pass

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        trace_id = uuid.uuid4().hex[:16]
        started = time.perf_counter()
        extra_headers: Dict[str, str] = {}
        try:
            status, payload = self._route(method)
        except AdmissionRejected as exc:
            # Typed admission refusal: 402 when the tenant's cost budget
            # is exhausted (retry only helps once the window resets),
            # 429 for rate limiting / a full queue. Retry-After either way.
            extra_headers["Retry-After"] = f"{max(exc.retry_after_s, 0):.0f}"
            status = 402 if exc.reason == "budget_exhausted" else 429
            payload = {
                "error": str(exc),
                "reason": exc.reason,
                "tenant": exc.tenant,
                "queue_depth": exc.queue_depth,
                "retry_after_s": exc.retry_after_s,
                "trace_id": trace_id,
            }
        except ServiceOverloadedError as exc:
            # Backpressure: the job queue is full. 429 + Retry-After tells
            # well-behaved clients how long to back off.
            extra_headers["Retry-After"] = f"{max(exc.retry_after_s, 0):.0f}"
            status, payload = 429, {
                "error": str(exc),
                "reason": exc.reason,
                "queue_depth": exc.queue_depth,
                "retry_after_s": exc.retry_after_s,
                "trace_id": trace_id,
            }
        except ServiceClosedError as exc:
            # Graceful drain: the service no longer accepts work.
            extra_headers["Retry-After"] = f"{max(exc.retry_after_s, 0):.0f}"
            status, payload = 503, {"error": str(exc), "trace_id": trace_id}
        except ServiceError as exc:
            status_code = 404 if isinstance(exc, JobNotFoundError) else 400
            status, payload = status_code, {"error": str(exc),
                                            "trace_id": trace_id}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {exc}",
                                    "trace_id": trace_id}
        if isinstance(payload, _SSEStream):
            self._stream_sse(status, payload, trace_id)
            _access_log.info(
                "access",
                extra={
                    "fields": {
                        "method": method,
                        "path": self.path,
                        "status": status,
                        "duration_ms": round(
                            (time.perf_counter() - started) * 1e3, 3
                        ),
                        "trace_id": trace_id,
                        "sse": True,
                    }
                },
            )
            return
        if isinstance(payload, _PlainText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", trace_id)
        for name, value in extra_headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        _access_log.info(
            "access",
            extra={
                "fields": {
                    "method": method,
                    "path": self.path,
                    "status": status,
                    "duration_ms": round(
                        (time.perf_counter() - started) * 1e3, 3
                    ),
                    "trace_id": trace_id,
                }
            },
        )

    def _stream_sse(self, status: int, stream: _SSEStream, trace_id: str) -> None:
        """Send headers, then write frames as they arrive until done.

        SSE has no Content-Length, so the response is delimited by closing
        the connection (``Connection: close``); a client hang-up simply
        ends the stream.
        """
        self.send_response(status)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.close_connection = True
        try:
            for frame in stream.frames:
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing left to deliver

    def _route(self, method: str) -> Tuple[int, Any]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        if not parts or parts[0] != "v1":
            return 404, {"error": f"unknown route {parsed.path!r}"}
        tail = parts[1:]

        if method == "GET" and tail == ["healthz"]:
            # Readiness, not just liveness: 503 while draining (or with
            # an unwritable ledger / a dead worker pool) tells load
            # balancers and the loadgen warmup gate to hold traffic.
            health = self.service.health()
            return (200 if health["ready"] else 503), health
        if method == "GET" and tail == ["schedulers"]:
            return 200, {"schedulers": self.service.stats()["schedulers"]}
        if method == "GET" and tail == ["metrics"]:
            stats = self.service.stats()
            fmt = query.get("format", "json")
            if fmt == "prometheus":
                text = render_prometheus(
                    stats["metrics"], gauges=_prometheus_gauges(stats)
                )
                return 200, _PlainText(text)
            if fmt != "json":
                raise ServiceError(
                    f"unknown metrics format {fmt!r}; 'json' or 'prometheus'"
                )
            return 200, stats
        if method == "GET" and tail == ["slo"]:
            return 200, self.service.slo.snapshot()
        if method == "GET" and tail == ["tenants"]:
            return 200, {"tenants": self.service.admission.tenants.snapshot()}
        if method == "GET" and tail == ["admission"]:
            out = self.service.admission.stats()
            out["batching"] = self.service.stats()["batching"]
            return 200, out
        if method == "POST" and tail == ["schedule"]:
            requests = self._tagged_requests(self._read_json())
            if len(requests) != 1:
                raise ServiceError(
                    "POST /v1/schedule takes exactly one request; "
                    "use POST /v1/jobs for batches"
                )
            return 200, self.service.schedule(requests[0]).to_dict()
        if method == "POST" and tail == ["jobs"]:
            requests = self._tagged_requests(self._read_json())
            job_ids = self.service.submit_batch(requests)
            return 202, {"job_ids": job_ids}
        if method == "GET" and tail == ["jobs"]:
            records = self.service.jobs(state=query.get("state"))
            return 200, {
                "jobs": [r.to_dict(include_response=False) for r in records]
            }
        if method == "GET" and tail == ["events"]:
            timeout = _sse_timeout(query)
            types = None
            if "types" in query:
                types = tuple(t for t in query["types"].split(",") if t)
            try:
                replay = int(query.get("replay", 0))
            except ValueError:
                raise ServiceError(
                    f"invalid replay {query['replay']!r}"
                ) from None
            return 200, _SSEStream(
                _bus_event_frames(self.service, types, replay, timeout)
            )
        if method == "GET" and tail == ["runs"]:
            ledger = self.service.ledger
            try:
                limit = int(query.get("limit", 50))
            except ValueError:
                raise ServiceError(f"invalid limit {query['limit']!r}") from None
            rows = ledger.runs(
                algorithm=query.get("algorithm"),
                workflow=query.get("workflow"),
                fingerprint=query.get("fingerprint"),
                source=query.get("source"),
                limit=limit,
            )
            return 200, {
                "enabled": ledger.enabled,
                "runs": [r.to_dict() for r in rows],
            }
        if method == "GET" and len(tail) == 2 and tail[0] == "runs":
            try:
                row = self.service.ledger.run(int(tail[1]))
            except (KeyError, ValueError):
                return 404, {"error": f"no archived run {tail[1]!r}"}
            return 200, row.to_dict()
        if (
            method == "GET"
            and len(tail) == 3
            and tail[0] == "jobs"
            and tail[2] == "events"
        ):
            job_id = tail[1]
            timeout = _sse_timeout(query)
            self.service.job(job_id)  # 404 before headers when unknown
            return 200, _SSEStream(
                _job_event_frames(self.service, job_id, timeout)
            )
        if len(tail) == 2 and tail[0] == "jobs":
            job_id = tail[1]
            if method == "GET":
                return 200, self.service.job(job_id).to_dict()
            if method == "DELETE":
                cancelled = self.service.cancel(job_id)
                return 200, {"job_id": job_id, "cancelled": cancelled}
        return 404, {"error": f"unknown route {method} {parsed.path!r}"}

    def _tagged_requests(self, payload: Any) -> Any:
        """Parse requests, applying ``X-Tenant`` / ``X-Priority`` headers.

        A header fills the field only where the request body left it at
        its default — an explicit body value wins, so batches can mix
        priorities while still sharing one tenant header.
        """
        requests = parse_requests(payload)
        tenant = self.headers.get("X-Tenant")
        priority = self.headers.get("X-Priority")
        if not tenant and not priority:
            return requests
        tagged = []
        for req in requests:
            updates: Dict[str, str] = {}
            if tenant and req.tenant == DEFAULT_TENANT:
                updates["tenant"] = tenant
            if priority and req.priority == DEFAULT_PRIORITY:
                updates["priority"] = priority
            tagged.append(replace(req, **updates) if updates else req)
        return tagged

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body is empty")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc


class _Server(ThreadingHTTPServer):
    # The http.server default backlog of 5 drops connections under bursty
    # concurrent traffic (observed as client-side ECONNRESET at ~32
    # simultaneous POSTs); raise it to absorb accept spikes.
    request_queue_size = 128
    daemon_threads = True


class ServiceGateway:
    """An embeddable HTTP server bound to one :class:`SchedulingService`.

    The server thread is a daemon; call :meth:`shutdown` (or use the
    context manager) for a clean stop. ``port=0`` picks a free port —
    read it back from :attr:`address`.
    """

    def __init__(
        self,
        service: SchedulingService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("_BoundHandler", (_Handler,), {"service": service})
        self._server = _Server((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound."""
        return self._server.server_address[0], self._server.server_port

    @property
    def url(self) -> str:
        """Base URL of the bound server, e.g. ``http://127.0.0.1:8080``."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceGateway":
        """Serve in a background daemon thread; returns self."""
        if self._thread is not None:
            raise ServiceError("gateway already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until shutdown)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, close the socket, join the server thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def start_gateway(
    service: Optional[SchedulingService] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs: Any,
) -> ServiceGateway:
    """Start a background gateway; builds a service when none is given."""
    if service is None:
        service = SchedulingService(**service_kwargs)
    return ServiceGateway(service, host=host, port=port).start()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_workers: int = 4,
    cache_size: int = 256,
    cache_ttl: Optional[float] = None,
    ledger_path: Optional[str] = None,
    log_level: str = "info",
    log_json: bool = False,
    max_queue_depth: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 0,
    executor: str = "thread",
    nodes: Optional[str] = None,
    tenants_path: Optional[str] = None,
) -> None:  # pragma: no cover - blocking entry point, exercised via CLI
    """Run a gateway in the foreground until interrupted.

    ``ledger_path`` enables the persistent run ledger: every computed
    response is archived there and ``GET /v1/runs`` serves the archive.
    ``tenants_path`` loads per-tenant admission policies (JSON; see
    ``docs/ADMISSION.md``) — without it every request runs under the
    permissive default tenant. ``executor="process"`` computes in worker
    processes (see ``docs/PARALLEL.md``); ``executor="cluster"`` computes
    on the remote ``repro-exp worker`` nodes listed in ``nodes``
    (see ``docs/CLUSTER.md``). SIGTERM and SIGINT both trigger
    a graceful drain: the socket closes, in-flight jobs finish, then the
    process exits.
    """
    import signal

    from ..admission import TenantRegistry
    from ..obs.ledger import RunLedger

    configure_logging(level=log_level, json_mode=log_json)
    bus = EventBus()
    ledger = (
        RunLedger(ledger_path, bus=bus) if ledger_path is not None else None
    )
    tenants = (
        TenantRegistry.from_json_file(tenants_path)
        if tenants_path is not None else None
    )
    service = SchedulingService(
        max_workers=max_workers, cache_size=cache_size, cache_ttl=cache_ttl,
        ledger=ledger, events=bus, max_queue_depth=max_queue_depth,
        job_timeout=job_timeout, max_retries=max_retries, executor=executor,
        nodes=nodes, tenants=tenants,
    )
    gateway = ServiceGateway(service, host=host, port=port)

    def _sigterm(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    print(f"repro scheduling service listening on {gateway.url}")
    if executor == "cluster":
        alive = service.health()["worker_count"]
        print(f"cluster executor: {alive} node(s) [{nodes}]")
    print("endpoints: /v1/healthz /v1/schedulers /v1/metrics "
          "/v1/schedule /v1/jobs /v1/jobs/<id>/events /v1/events "
          "/v1/runs /v1/tenants /v1/admission /v1/slo  "
          "(metrics?format=prometheus)")
    if ledger is not None:
        print(f"run ledger: {ledger.path} ({ledger.count()} archived runs)")
    if tenants is not None:
        names = sorted(tenants.snapshot()["tenants"])
        print(f"tenants: {tenants_path} ({', '.join(names) or 'default only'})")
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining: waiting for in-flight jobs", flush=True)
    finally:
        gateway.shutdown()
        service.close(wait=True)
        if ledger is not None:
            ledger.close()
        print("drained; bye", flush=True)
