"""Scheduling-as-a-service layer (see :mod:`repro.service.engine`).

Turn-key usage::

    from repro.service import SchedulingService

    with SchedulingService() as svc:
        resp = svc.schedule({
            "workflow": {"family": "montage", "n_tasks": 60, "rng": 1,
                         "sigma_ratio": 0.5},
            "algorithm": "heft_budg",
            "budget": {"position": 0.5},
            "evaluation": {"n_reps": 10},
        })
        print(resp.planned_makespan, resp.evaluation["budget_success_rate"])

The HTTP gateway lives in :mod:`repro.service.http` (also exposed through
the ``repro-exp serve`` command).
"""

from .cache import CacheStats, LRUCache
from .engine import JobRecord, JobState, SchedulingService
from .metrics import MetricsRegistry
from .spec import (
    BudgetSpec,
    EvaluationSpec,
    PlatformSpec,
    ScheduleRequest,
    ScheduleResponse,
    WorkflowSpec,
    parse_requests,
)

__all__ = [
    "BudgetSpec",
    "CacheStats",
    "EvaluationSpec",
    "JobRecord",
    "JobState",
    "LRUCache",
    "MetricsRegistry",
    "PlatformSpec",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulingService",
    "WorkflowSpec",
    "parse_requests",
]
