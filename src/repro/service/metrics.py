"""Lightweight operational metrics for the scheduling service.

Counters and latency summaries, thread-safe, zero dependencies. A
:class:`MetricsRegistry` is deliberately far simpler than a full metrics
stack: monotonically increasing counters plus per-name observation
summaries (lifetime count / sum / min / max, cumulative histogram bucket
counts, and quantiles over a bounded window of recent samples).
``snapshot()`` returns plain dicts ready for the ``/v1/metrics`` endpoint
or a log line; :func:`repro.obs.prometheus.render_prometheus` turns the
same snapshot into Prometheus text exposition.

Scope labelling: lifetime fields keep their plain names (``count``,
``sum``, ``mean``, ``min``, ``max``, ``buckets``) while fields computed
from the bounded sample window are prefixed ``window_`` (``window_count``,
``window_p50``, …) so dashboards cannot silently mix the two scopes.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["MetricsRegistry", "quantile", "DEFAULT_BUCKETS"]

#: Samples retained per observation series for quantile estimates.
_WINDOW = 1024

#: Default histogram upper bounds, in seconds — tuned for request/schedule
#: latencies (sub-millisecond cache hits up to multi-minute refined runs).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def quantile(samples: List[float], q: float) -> float:
    """Linear-interpolated quantile of ``samples`` (q in [0, 1]).

    Raises ``ValueError`` on an empty list — callers guard.
    """
    if not samples:
        raise ValueError("quantile of empty sample list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _bound_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:g}"


class _Series:
    __slots__ = ("count", "total", "minimum", "maximum", "window",
                 "bounds", "bucket_counts")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.window: Deque[float] = deque(maxlen=_WINDOW)
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # One count per finite bound, plus the implicit +Inf bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.window.append(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    def summary(self) -> Dict[str, Any]:
        recent = list(self.window)
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            cumulative[_bound_label(bound)] = running
        cumulative["+Inf"] = self.count
        out = {
            # lifetime scope
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": cumulative,
            # bounded-window scope (last _WINDOW samples only)
            "window_count": len(recent),
        }
        # A freshly reset window has no samples to take quantiles over;
        # the window_p* keys are simply absent (the Prometheus renderer
        # skips missing quantile keys).
        if recent:
            out["window_p50"] = quantile(recent, 0.50)
            out["window_p95"] = quantile(recent, 0.95)
            out["window_p99"] = quantile(recent, 0.99)
        return out


class MetricsRegistry:
    """Named counters and observation series.

    ``incr`` for event counts, ``observe`` for measured values (latencies,
    batch sizes…), ``timer`` to observe a wall-clock duration around a
    block. Unknown names spring into existence on first use. ``buckets``
    overrides the histogram upper bounds applied to new series.
    """

    def __init__(self, *, buckets: Optional[Sequence[float]] = None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._series: Dict[str, _Series] = {}
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(buckets)
        if any(b <= 0 or math.isinf(b) for b in bounds):
            raise ValueError("histogram buckets must be finite and positive")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self._buckets: Tuple[float, ...] = tuple(bounds)

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_counter(self, name: str, value: int) -> None:
        """Snap counter ``name`` to an externally tracked monotonic total.

        For counters whose source of truth lives elsewhere (e.g. the
        response cache's own hit/miss/eviction stats). The counter never
        goes backwards: the new value is ``max(current, value)``.
        """
        with self._lock:
            self._counters[name] = max(self._counters.get(name, 0), int(value))

    def observe(self, name: str, value: float) -> None:
        """Record one sample into observation series ``name``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self._buckets)
            series.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the duration of the enclosed block, in seconds."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def snapshot(self, *, reset_windows: bool = False) -> Dict[str, Any]:
        """All counters and series summaries, as plain JSON-able dicts.

        ``reset_windows=True`` atomically drains each series' bounded
        sample window *after* computing its summary, for delta-style
        scrapers that want per-interval quantiles. The read and the
        reset happen under the same lock that ``observe`` takes, so a
        sample is either included in this snapshot or lands in the next
        window — never both, never neither. Lifetime fields (``count``,
        ``sum``, ``buckets``…) are unaffected.
        """
        with self._lock:
            out = {
                "counters": dict(self._counters),
                "series": {
                    name: series.summary()
                    for name, series in self._series.items()
                },
            }
            if reset_windows:
                for series in self._series.values():
                    series.window.clear()
            return out

    def reset(self) -> None:
        """Forget every counter and series."""
        with self._lock:
            self._counters.clear()
            self._series.clear()
