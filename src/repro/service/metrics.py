"""Lightweight operational metrics for the scheduling service.

Counters and latency summaries, thread-safe, zero dependencies. A
:class:`MetricsRegistry` is deliberately far simpler than a full metrics
stack: monotonically increasing counters plus per-name observation
summaries (count / sum / min / max and quantiles over a bounded window of
recent samples). ``snapshot()`` returns plain dicts ready for the
``/v1/metrics`` endpoint or a log line.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List

__all__ = ["MetricsRegistry", "quantile"]

#: Samples retained per observation series for quantile estimates.
_WINDOW = 1024


def quantile(samples: List[float], q: float) -> float:
    """Linear-interpolated quantile of ``samples`` (q in [0, 1]).

    Raises ``ValueError`` on an empty list — callers guard.
    """
    if not samples:
        raise ValueError("quantile of empty sample list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class _Series:
    __slots__ = ("count", "total", "minimum", "maximum", "window")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.window: Deque[float] = deque(maxlen=_WINDOW)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.window.append(value)

    def summary(self) -> Dict[str, float]:
        recent = list(self.window)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": quantile(recent, 0.50),
            "p95": quantile(recent, 0.95),
            "p99": quantile(recent, 0.99),
        }


class MetricsRegistry:
    """Named counters and observation series.

    ``incr`` for event counts, ``observe`` for measured values (latencies,
    batch sizes…), ``timer`` to observe a wall-clock duration around a
    block. Unknown names spring into existence on first use.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._series: Dict[str, _Series] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into observation series ``name``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series()
            series.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the duration of the enclosed block, in seconds."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def snapshot(self) -> Dict[str, Any]:
        """All counters and series summaries, as plain JSON-able dicts."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "series": {
                    name: series.summary()
                    for name, series in self._series.items()
                },
            }

    def reset(self) -> None:
        """Forget every counter and series."""
        with self._lock:
            self._counters.clear()
            self._series.clear()
