"""Declarative request/response model of the scheduling service.

A :class:`ScheduleRequest` is a plain-data description of one scheduling
job: *which workflow* (a generator spec or an inline DAX document), *which
platform* (the paper's, a parametric linear catalogue, or an inline
:func:`repro.io.platform_to_dict` payload), *which algorithm*, *which
budget* (absolute dollars or a position on the workflow's own
``[B_min, B_high]`` axis), and optionally *how many stochastic replays* to
run against the resulting schedule.

Requests are JSON-round-trippable (``to_dict``/``from_dict``) so they can
travel over the HTTP gateway, be archived next to results, and be hashed
into content-addressed cache keys (:meth:`ScheduleRequest.fingerprint`).
All validation raises :class:`~repro.errors.ServiceError` with messages
that name the offending field — the gateway maps them to HTTP 400.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..errors import ReproError, ServiceError
from ..io import fingerprint as _fingerprint
from ..io import platform_from_dict, platform_to_dict
from ..platform.cloud import PAPER_PLATFORM, CloudPlatform, make_linear_platform
from ..scheduling.registry import available_schedulers
from ..workflow.dag import Workflow
from ..workflow.dax import parse_dax
from ..workflow.generators import FAMILIES, generate

__all__ = [
    "WorkflowSpec",
    "PlatformSpec",
    "BudgetSpec",
    "EvaluationSpec",
    "ScheduleRequest",
    "ScheduleResponse",
    "parse_requests",
    "PRIORITIES",
    "DEFAULT_TENANT",
    "DEFAULT_PRIORITY",
]

#: Admission priority classes, best-served first. ``interactive`` jumps the
#: queue, ``batch`` is the default, ``best_effort`` runs when nothing
#: better waits (starvation aging eventually promotes it; see
#: :mod:`repro.admission.queue`).
PRIORITIES = ("interactive", "batch", "best_effort")

#: Requests that name no tenant are accounted to this one.
DEFAULT_TENANT = "default"

#: Requests that name no priority class land here.
DEFAULT_PRIORITY = "batch"

#: Keyword arguments accepted by :func:`make_linear_platform`, allowed in a
#: ``PlatformSpec(kind="linear")`` params mapping.
_LINEAR_PARAMS = frozenset(
    (
        "base_speed", "base_hourly_cost", "n_categories", "speed_factor",
        "cost_factor", "boot_time", "initial_cost", "bandwidth",
        "transfer_cost_per_gb", "storage_cost_per_gb_month", "cores", "name",
    )
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def _as_mapping(data: Any, what: str) -> Mapping[str, Any]:
    _require(isinstance(data, Mapping), f"{what} must be a JSON object, got {type(data).__name__}")
    return data


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkflowSpec:
    """Which workflow to schedule: a generator family or an inline DAX.

    Exactly one of ``family`` / ``dax`` must be set. Generator mode mirrors
    :func:`repro.workflow.generators.generate`; DAX mode feeds the document
    to :func:`repro.workflow.dax.parse_dax` (``sigma_ratio`` applies in both
    modes).
    """

    family: Optional[str] = None
    n_tasks: int = 0
    rng: Optional[int] = None
    sigma_ratio: float = 0.0
    dax: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        _require(
            (self.family is None) != (self.dax is None),
            "workflow spec needs exactly one of 'family' or 'dax'",
        )
        if self.family is not None:
            _require(
                self.family.lower() in FAMILIES,
                f"unknown workflow family {self.family!r}; "
                f"available: {sorted(FAMILIES)}",
            )
            _require(
                self.n_tasks > 0,
                f"generator mode needs n_tasks > 0, got {self.n_tasks}",
            )
        _require(
            math.isfinite(self.sigma_ratio) and self.sigma_ratio >= 0.0,
            f"sigma_ratio must be finite and >= 0, got {self.sigma_ratio}",
        )

    def resolve(self) -> Workflow:
        """Materialize the workflow (frozen, ready for scheduling)."""
        try:
            if self.family is not None:
                wf = generate(
                    self.family, self.n_tasks, rng=self.rng,
                    sigma_ratio=self.sigma_ratio, name=self.name,
                )
            else:
                wf = parse_dax(
                    self.dax or "", sigma_ratio=self.sigma_ratio,
                    name=self.name,
                )
        except ServiceError:
            raise
        except ReproError as exc:
            raise ServiceError(f"workflow spec failed to resolve: {exc}") from exc
        return wf.freeze()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        out: Dict[str, Any] = {"sigma_ratio": self.sigma_ratio}
        if self.family is not None:
            out.update(family=self.family, n_tasks=self.n_tasks)
            if self.rng is not None:
                out["rng"] = self.rng
        else:
            out["dax"] = self.dax
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "WorkflowSpec":
        """Decode, rejecting unknown fields by name."""
        data = _as_mapping(data, "workflow spec")
        unknown = set(data) - {"family", "n_tasks", "rng", "sigma_ratio", "dax", "name"}
        _require(not unknown, f"unknown workflow spec fields: {sorted(unknown)}")
        return cls(
            family=data.get("family"),
            n_tasks=int(data.get("n_tasks", 0)),
            rng=data.get("rng"),
            sigma_ratio=float(data.get("sigma_ratio", 0.0)),
            dax=data.get("dax"),
            name=str(data.get("name", "")),
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlatformSpec:
    """Which platform to schedule on.

    ``kind="paper"`` is Table II (the default); ``kind="linear"`` forwards
    ``params`` to :func:`make_linear_platform`; ``kind="inline"`` embeds a
    full :func:`repro.io.platform_to_dict` payload in ``params``.
    """

    kind: str = "paper"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(
            self.kind in ("paper", "linear", "inline"),
            f"platform kind must be 'paper', 'linear' or 'inline', "
            f"got {self.kind!r}",
        )
        if self.kind == "paper":
            _require(not self.params, "paper platform takes no params")
        elif self.kind == "linear":
            unknown = set(self.params) - _LINEAR_PARAMS
            _require(
                not unknown,
                f"unknown linear platform params: {sorted(unknown)}",
            )

    def resolve(self) -> CloudPlatform:
        """Materialize the platform object."""
        try:
            if self.kind == "paper":
                return PAPER_PLATFORM
            if self.kind == "linear":
                return make_linear_platform(**dict(self.params))
            return platform_from_dict(dict(self.params))
        except ServiceError:
            raise
        except (ReproError, TypeError, ValueError) as exc:
            raise ServiceError(f"platform spec failed to resolve: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "PlatformSpec":
        """Decode, rejecting unknown fields by name."""
        data = _as_mapping(data, "platform spec")
        unknown = set(data) - {"kind", "params"}
        _require(not unknown, f"unknown platform spec fields: {sorted(unknown)}")
        return cls(
            kind=str(data.get("kind", "paper")),
            params=dict(data.get("params", {})),
        )

    @classmethod
    def inline(cls, platform: CloudPlatform) -> "PlatformSpec":
        """Spec embedding ``platform`` by value."""
        return cls(kind="inline", params=platform_to_dict(platform))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BudgetSpec:
    """The budget, in dollars or as a position on the budget axis.

    ``amount`` is an absolute budget. ``position`` is a fraction in
    ``[0, 1]`` mapped onto the workflow's own ``[B_min, B_high]`` axis
    (0 = the minimal feasible budget, 1 = the baseline-saturating high
    budget of §V-A) — the paper's "medium budget" is ``position=0.5``.
    Exactly one must be set.
    """

    amount: Optional[float] = None
    position: Optional[float] = None

    def __post_init__(self) -> None:
        _require(
            (self.amount is None) != (self.position is None),
            "budget spec needs exactly one of 'amount' or 'position'",
        )
        if self.amount is not None:
            _require(
                math.isfinite(self.amount) and self.amount > 0.0,
                f"budget amount must be finite and > 0, got {self.amount}",
            )
        if self.position is not None:
            _require(
                0.0 <= self.position <= 1.0,
                f"budget position must be in [0, 1], got {self.position}",
            )

    def resolve(self, wf: Workflow, platform: CloudPlatform) -> float:
        """The budget in dollars (computes the axis in position mode)."""
        if self.amount is not None:
            return self.amount
        from ..experiments.budgets import high_budget, minimal_budget

        b_min = minimal_budget(wf, platform)
        b_high = high_budget(wf, platform)
        assert self.position is not None
        return b_min + self.position * (b_high - b_min)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        if self.amount is not None:
            return {"amount": self.amount}
        return {"position": self.position}

    @classmethod
    def from_dict(cls, data: Any) -> "BudgetSpec":
        """Decode; a bare number is shorthand for ``{"amount": n}``."""
        if isinstance(data, (int, float)) and not isinstance(data, bool):
            return cls(amount=float(data))
        data = _as_mapping(data, "budget spec")
        unknown = set(data) - {"amount", "position"}
        _require(not unknown, f"unknown budget spec fields: {sorted(unknown)}")
        amount = data.get("amount")
        position = data.get("position")
        return cls(
            amount=None if amount is None else float(amount),
            position=None if position is None else float(position),
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationSpec:
    """Optional stochastic replay of the computed schedule.

    ``n_reps`` executions with actual weights sampled from seeds
    ``seed, seed+1, …`` — deterministic, so a cached response is exact.
    ``dc_capacity`` bounds the datacenter bandwidth (bytes/s; ``None`` keeps
    the paper's infinite-capacity assumption).
    """

    n_reps: int = 0
    seed: int = 0
    dc_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.n_reps >= 0, f"n_reps must be >= 0, got {self.n_reps}")
        if self.dc_capacity is not None:
            _require(
                self.dc_capacity > 0.0,
                f"dc_capacity must be > 0, got {self.dc_capacity}",
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        out: Dict[str, Any] = {"n_reps": self.n_reps, "seed": self.seed}
        if self.dc_capacity is not None:
            out["dc_capacity"] = self.dc_capacity
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "EvaluationSpec":
        """Decode, rejecting unknown fields by name."""
        data = _as_mapping(data, "evaluation spec")
        unknown = set(data) - {"n_reps", "seed", "dc_capacity"}
        _require(not unknown, f"unknown evaluation spec fields: {sorted(unknown)}")
        cap = data.get("dc_capacity")
        return cls(
            n_reps=int(data.get("n_reps", 0)),
            seed=int(data.get("seed", 0)),
            dc_capacity=None if cap is None else float(cap),
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleRequest:
    """One complete scheduling job description.

    ``tenant`` and ``priority`` are *admission* attributes: they decide how
    the service treats the request (rate limits, cost budgets, queue
    order) but not what is computed — they are therefore excluded from
    :meth:`fingerprint`, so identical work from different tenants shares
    one cache entry.
    """

    workflow: WorkflowSpec
    algorithm: str
    budget: BudgetSpec
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)
    tenant: str = DEFAULT_TENANT
    priority: str = DEFAULT_PRIORITY

    def __post_init__(self) -> None:
        names = available_schedulers()
        _require(
            self.algorithm.lower() in names,
            f"unknown algorithm {self.algorithm!r}; available: {names}",
        )
        _require(
            bool(self.tenant) and isinstance(self.tenant, str),
            f"tenant must be a non-empty string, got {self.tenant!r}",
        )
        _require(
            self.priority in PRIORITIES,
            f"unknown priority {self.priority!r}; one of {PRIORITIES}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready encoding (roundtrips via :meth:`from_dict`).

        Admission attributes appear only when they differ from the
        defaults, so pre-admission request documents keep their historical
        shape.
        """
        out: Dict[str, Any] = {
            "workflow": self.workflow.to_dict(),
            "platform": self.platform.to_dict(),
            "algorithm": self.algorithm.lower(),
            "budget": self.budget.to_dict(),
            "evaluation": self.evaluation.to_dict(),
        }
        if self.tenant != DEFAULT_TENANT:
            out["tenant"] = self.tenant
        if self.priority != DEFAULT_PRIORITY:
            out["priority"] = self.priority
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "ScheduleRequest":
        """Decode a full request, naming any missing/unknown field."""
        data = _as_mapping(data, "schedule request")
        unknown = set(data) - {
            "workflow", "platform", "algorithm", "budget", "evaluation",
            "tenant", "priority",
        }
        _require(not unknown, f"unknown request fields: {sorted(unknown)}")
        _require("workflow" in data, "request is missing 'workflow'")
        _require("algorithm" in data, "request is missing 'algorithm'")
        _require("budget" in data, "request is missing 'budget'")
        return cls(
            workflow=WorkflowSpec.from_dict(data["workflow"]),
            platform=PlatformSpec.from_dict(data.get("platform", {})),
            algorithm=str(data["algorithm"]),
            budget=BudgetSpec.from_dict(data["budget"]),
            evaluation=EvaluationSpec.from_dict(data.get("evaluation", {})),
            tenant=str(data.get("tenant", DEFAULT_TENANT)),
            priority=str(data.get("priority", DEFAULT_PRIORITY)),
        )

    def fingerprint(self) -> str:
        """Content-addressed identity of this request (cache key).

        Hashes the *work*, not the admission attributes: two tenants
        posting the same job produce the same fingerprint.
        """
        payload = self.to_dict()
        payload.pop("tenant", None)
        payload.pop("priority", None)
        return _fingerprint(payload)

    def family_key(self) -> str:
        """Identity of this request's *spec family* (batching key).

        Two requests belong to one family when they compute the same
        schedule and draw evaluation replications from the same
        deterministic per-seed stream — i.e. they differ at most in
        ``evaluation.n_reps``, ``evaluation.seed``, tenant and priority.
        ``dc_capacity`` changes replay results, so it stays in the key.
        """
        payload = self.to_dict()
        payload.pop("tenant", None)
        payload.pop("priority", None)
        evaluation = payload["evaluation"]
        payload["evaluation"] = {
            k: v for k, v in evaluation.items() if k == "dc_capacity"
        }
        return _fingerprint(payload)


# ----------------------------------------------------------------------
@dataclass
class ScheduleResponse:
    """What the service returns for one request.

    ``schedule`` is a :func:`repro.io.schedule_to_dict` payload (load it
    back with :func:`repro.io.schedule_from_dict`). ``evaluation`` is
    ``None`` unless the request asked for stochastic replays; it then holds
    the per-rep records and summary statistics produced by the engine.
    ``stages`` is this request's wall-clock stage decomposition
    (:meth:`repro.obs.stages.StageTimings.to_dict`) when the engine
    recorded one — per-request telemetry, like ``elapsed_s``, so it is
    excluded from any response-identity comparison and omitted from the
    encoding when absent.
    """

    request_fingerprint: str
    algorithm: str
    budget: float
    planned_makespan: float
    planned_cost: float
    within_budget_plan: bool
    n_vms: int
    n_tasks: int
    workflow_name: str
    schedule: Dict[str, Any]
    evaluation: Optional[Dict[str, Any]] = None
    cached: bool = False
    elapsed_s: float = 0.0
    stages: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        out = {
            "request_fingerprint": self.request_fingerprint,
            "algorithm": self.algorithm,
            "budget": self.budget,
            "planned_makespan": self.planned_makespan,
            "planned_cost": self.planned_cost,
            "within_budget_plan": self.within_budget_plan,
            "n_vms": self.n_vms,
            "n_tasks": self.n_tasks,
            "workflow_name": self.workflow_name,
            "schedule": self.schedule,
            "evaluation": self.evaluation,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }
        if self.stages is not None:
            out["stages"] = self.stages
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleResponse":
        """Decode, rejecting unknown fields by name."""
        fields_ = {
            "request_fingerprint", "algorithm", "budget", "planned_makespan",
            "planned_cost", "within_budget_plan", "n_vms", "n_tasks",
            "workflow_name", "schedule", "evaluation", "cached", "elapsed_s",
            "stages",
        }
        unknown = set(data) - fields_
        _require(not unknown, f"unknown response fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in fields_ if k in data})


def parse_requests(payload: Any) -> List[ScheduleRequest]:
    """Parse one request or a batch (a JSON array) into a list."""
    if isinstance(payload, list):
        _require(bool(payload), "request batch is empty")
        return [ScheduleRequest.from_dict(item) for item in payload]
    return [ScheduleRequest.from_dict(payload)]
