"""Thread-safe LRU + TTL cache for scheduling responses.

Scheduling a 90-task workflow takes milliseconds to minutes depending on
the algorithm (Table III), while identical requests are common in sweep
and dashboard traffic — the same (workflow, platform, algorithm, budget)
tuple hit repeatedly. Requests are content-addressed
(:meth:`repro.service.spec.ScheduleRequest.fingerprint`), and every
response is deterministic in its request (generators, schedulers, and the
evaluation replays are all seeded), so caching whole responses is exact,
not approximate.

Concurrent misses on one key are coalesced (single-flight): one thread
computes, the rest wait and share — a thundering herd of identical sweep
requests costs one scheduling run, not N. The clock is injectable so TTL
behaviour is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Monotonic counters describing cache effectiveness.

    ``coalesced`` counts the hits served by waiting on another thread's
    in-flight computation of the same key (single-flight); it is a subset
    of ``hits``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before any lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready counter snapshot (includes the hit rate)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    stored_at: float = field(default=0.0)


class _InFlight:
    """Single-flight rendezvous: followers wait on the leader's event."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class LRUCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    Parameters
    ----------
    capacity:
        Maximum number of entries; inserting beyond it evicts the least
        recently *used* (looked-up or stored) entry. Must be >= 1.
    ttl:
        Seconds an entry stays valid; ``None`` means forever.
    clock:
        Monotonic time source (seconds); defaults to :func:`time.monotonic`.
        Injectable for deterministic TTL tests.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0.0:
            raise ValueError(f"cache ttl must be > 0 or None, got {ttl}")
        self._capacity = capacity
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._in_flight: Dict[Hashable, _InFlight] = {}
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    @property
    def ttl(self) -> Optional[float]:
        """Entry lifetime in seconds; ``None`` means forever."""
        return self._ttl

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, touch=False) is not None

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None, *, touch: bool = True) -> Any:
        """The cached value, or ``default`` on a miss/expiry.

        ``touch=False`` peeks without refreshing recency or counting the
        lookup in the stats.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self._stats.expirations += 1
                entry = None
            if not touch:
                return default if entry is None else entry.value
            if entry is None:
                self._stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry.value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the LRU entry when over capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(value, stored_at=self._clock())
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_cached)`` — computes and stores on a miss.

        ``compute`` runs *outside* the lock, so a slow scheduling job does
        not serialize unrelated lookups. Concurrent misses on the same key
        are *coalesced* (single-flight): the first caller becomes the
        leader and computes; the rest block on its completion and share the
        result, counted as a hit plus a ``coalesced`` tick. If the leader's
        ``compute`` raises, the error propagates to the leader only —
        waiting followers retry (one of them becoming the new leader)
        rather than inheriting a failure that may have been transient.

        Each call counts exactly one lookup: a miss for the leader, a hit
        for served followers and plain cache hits.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and self._expired(entry):
                    del self._entries[key]
                    self._stats.expirations += 1
                    entry = None
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._stats.hits += 1
                    return entry.value, True
                flight = self._in_flight.get(key)
                leader = flight is None
                if leader:
                    flight = _InFlight()
                    self._in_flight[key] = flight
                    self._stats.misses += 1
            if leader:
                try:
                    value = compute()
                except BaseException as exc:
                    with self._lock:
                        self._in_flight.pop(key, None)
                        flight.error = exc
                        flight.event.set()
                    raise
                self.put(key, value)
                with self._lock:
                    self._in_flight.pop(key, None)
                    flight.value = value
                    flight.event.set()
                return value, False
            flight.event.wait()
            if flight.error is None:
                with self._lock:
                    self._stats.hits += 1
                    self._stats.coalesced += 1
                return flight.value, True
            # Leader failed: fall through and retry from the top.

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A snapshot copy of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                expirations=self._stats.expirations,
                coalesced=self._stats.coalesced,
            )

    # ------------------------------------------------------------------
    def _expired(self, entry: _Entry) -> bool:
        return self._ttl is not None and (
            self._clock() - entry.stored_at > self._ttl
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(len={len(self)}, capacity={self._capacity}, "
            f"ttl={self._ttl})"
        )
