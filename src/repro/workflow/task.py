"""Tasks with stochastic weights.

A task's *weight* is its number of instructions. Following §III-A of the
paper, the weight is not known exactly in advance: it follows a Gaussian law
with mean ``mean`` (the paper's ``w̄_i``) and standard deviation ``sigma``
(``σ_i``). Scheduling algorithms plan with the *conservative* weight
``w̄ + σ``; the simulator samples an *actual* weight per execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkflowError
from ..rng import RngLike, as_generator

__all__ = ["StochasticWeight", "Task", "TRUNCATION_FLOOR_FRACTION"]

#: Actual sampled weights are floored at this fraction of the mean. The
#: Gaussian model admits negative samples (likely at sigma >= mean); the
#: paper does not state its truncation rule, so we clamp at 1% of the mean
#: (documented in DESIGN.md).
TRUNCATION_FLOOR_FRACTION = 0.01


@dataclass(frozen=True)
class StochasticWeight:
    """Gaussian task weight ``N(mean, sigma**2)`` in instructions.

    Parameters
    ----------
    mean:
        Expected number of instructions (``w̄``), strictly positive.
    sigma:
        Standard deviation (``σ``), non-negative. The paper's experiments use
        ``σ ∈ {0.25, 0.5, 0.75, 1.0} × w̄``.
    """

    mean: float
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.mean) or self.mean <= 0.0:
            raise WorkflowError(f"weight mean must be finite and > 0, got {self.mean}")
        if not np.isfinite(self.sigma) or self.sigma < 0.0:
            raise WorkflowError(f"weight sigma must be finite and >= 0, got {self.sigma}")

    @property
    def conservative(self) -> float:
        """Planning weight ``w̄ + σ`` used throughout §IV."""
        return self.mean + self.sigma

    def scaled_sigma(self, ratio: float) -> "StochasticWeight":
        """Return a copy whose sigma is ``ratio × mean`` (§V-A protocol)."""
        if ratio < 0.0:
            raise WorkflowError(f"sigma ratio must be >= 0, got {ratio}")
        return StochasticWeight(self.mean, ratio * self.mean)

    def sample(self, rng: RngLike = None) -> float:
        """Draw one actual weight, truncated below at 1% of the mean."""
        gen = as_generator(rng)
        value = gen.normal(self.mean, self.sigma) if self.sigma > 0.0 else self.mean
        floor = TRUNCATION_FLOOR_FRACTION * self.mean
        return float(max(value, floor))

    def sample_many(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` independent actual weights (vectorized)."""
        gen = as_generator(rng)
        if self.sigma > 0.0:
            values = gen.normal(self.mean, self.sigma, size=n)
        else:
            values = np.full(n, self.mean)
        floor = TRUNCATION_FLOOR_FRACTION * self.mean
        return np.maximum(values, floor)


@dataclass(frozen=True)
class Task:
    """One workflow task (§III-A).

    Parameters
    ----------
    id:
        Unique task identifier within its workflow.
    weight:
        Stochastic instruction count.
    category:
        Free-form label of the transformation (e.g. ``"mProject"``); used by
        generators and reports, never by the algorithms.
    external_input:
        Bytes read from outside the cloud (``d_in,DC`` contribution). These
        data are staged at the datacenter before execution starts.
    external_output:
        Bytes shipped to the outside world after the task completes
        (``d_DC,out`` contribution).
    """

    id: str
    weight: StochasticWeight
    category: str = ""
    external_input: float = 0.0
    external_output: float = 0.0

    def __post_init__(self) -> None:
        if not self.id:
            raise WorkflowError("task id must be a non-empty string")
        if self.external_input < 0.0 or self.external_output < 0.0:
            raise WorkflowError(
                f"task {self.id!r}: external data sizes must be >= 0 "
                f"(got in={self.external_input}, out={self.external_output})"
            )

    @property
    def mean_weight(self) -> float:
        """Mean instruction count ``w̄``."""
        return self.weight.mean

    @property
    def conservative_weight(self) -> float:
        """Planning weight ``w̄ + σ``."""
        return self.weight.conservative

    def with_sigma_ratio(self, ratio: float) -> "Task":
        """Copy of this task with ``σ = ratio × w̄`` (experiment protocol)."""
        return Task(
            id=self.id,
            weight=self.weight.scaled_sigma(ratio),
            category=self.category,
            external_input=self.external_input,
            external_output=self.external_output,
        )
