"""Workflow DAGs (§III-A).

A workflow is a directed acyclic graph ``G = (V, E)`` whose vertices are
:class:`~repro.workflow.task.Task` objects and whose edges carry the amount
of data transferred from producer to consumer (``size(d_{T_i,T_j})``).

The class is deliberately self-contained (no networkx dependency in the
library proper — networkx is only used as a *test oracle*): scheduling inner
loops traverse these structures millions of times, so adjacency is stored in
plain dicts/lists and derived quantities (topological order, levels, bottom
levels) are cached after first computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import CycleError, DanglingEdgeError, WorkflowError
from .task import StochasticWeight, Task

__all__ = ["Edge", "Workflow"]


@dataclass(frozen=True)
class Edge:
    """A dependency ``producer → consumer`` carrying ``data`` bytes."""

    producer: str
    consumer: str
    data: float = 0.0

    def __post_init__(self) -> None:
        if self.producer == self.consumer:
            raise WorkflowError(f"self-dependency on task {self.producer!r}")
        if self.data < 0.0:
            raise WorkflowError(
                f"edge {self.producer!r}->{self.consumer!r}: negative data size {self.data}"
            )


class Workflow:
    """An immutable-after-freeze scientific workflow DAG.

    Build with :meth:`add_task` / :meth:`add_edge`, then call :meth:`freeze`
    (idempotent; also called implicitly by any derived-property access).
    Freezing validates acyclicity and computes the topological order.
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._succ: Dict[str, Dict[str, float]] = {}
        self._pred: Dict[str, Dict[str, float]] = {}
        self._frozen = False
        self._topo: Optional[List[str]] = None
        self._levels: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> None:
        """Register ``task``; ids must be unique."""
        self._check_mutable()
        if task.id in self._tasks:
            raise WorkflowError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task
        self._succ[task.id] = {}
        self._pred[task.id] = {}

    def add_edge(self, producer: str, consumer: str, data: float = 0.0) -> None:
        """Add the dependency ``producer → consumer`` with ``data`` bytes.

        Parallel edges are merged by summing their data amounts (a producer
        may emit several files consumed by the same task, as in DAX inputs).
        """
        self._check_mutable()
        Edge(producer, consumer, data)  # validate
        for tid in (producer, consumer):
            if tid not in self._tasks:
                raise DanglingEdgeError(f"edge references unknown task {tid!r}")
        self._succ[producer][consumer] = self._succ[producer].get(consumer, 0.0) + data
        self._pred[consumer][producer] = self._pred[consumer].get(producer, 0.0) + data

    def _check_mutable(self) -> None:
        if self._frozen:
            raise WorkflowError("workflow is frozen; build a new one to modify")

    def freeze(self) -> "Workflow":
        """Validate the DAG (non-empty, acyclic) and lock the structure."""
        if self._frozen:
            return self
        if not self._tasks:
            raise WorkflowError("workflow has no tasks")
        self._topo = self._toposort()
        self._frozen = True
        return self

    def _toposort(self) -> List[str]:
        """Kahn's algorithm; deterministic (insertion order tie-break)."""
        indeg = {tid: len(preds) for tid, preds in self._pred.items()}
        ready = [tid for tid in self._tasks if indeg[tid] == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            tid = ready[head]
            head += 1
            order.append(tid)
            for succ in self._succ[tid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            stuck = sorted(tid for tid, d in indeg.items() if d > 0)
            raise CycleError(f"workflow contains a cycle through tasks {stuck[:5]}")
        return order

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, tid: str) -> bool:
        return tid in self._tasks

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    @property
    def n_tasks(self) -> int:
        """Number of tasks ``n``."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of dependencies ``e``."""
        return sum(len(s) for s in self._succ.values())

    def task(self, tid: str) -> Task:
        """The :class:`Task` with id ``tid``."""
        try:
            return self._tasks[tid]
        except KeyError:
            raise KeyError(f"no task {tid!r} in workflow {self.name!r}") from None

    @property
    def tasks(self) -> Mapping[str, Task]:
        """Read-only id → task mapping."""
        return dict(self._tasks)

    def successors(self, tid: str) -> Mapping[str, float]:
        """``consumer id → edge bytes`` for edges out of ``tid``."""
        return self._succ[tid]

    def predecessors(self, tid: str) -> Mapping[str, float]:
        """``producer id → edge bytes`` for edges into ``tid``."""
        return self._pred[tid]

    def edges(self) -> Iterator[Edge]:
        """Iterate every edge, in producer topological order."""
        source = self._topo if self._frozen and self._topo is not None else list(self._tasks)
        for producer in source:
            for consumer, data in self._succ[producer].items():
                yield Edge(producer, consumer, data)

    @property
    def entry_tasks(self) -> List[str]:
        """Tasks without predecessors, in topological order."""
        self.freeze()
        return [tid for tid in self._topo if not self._pred[tid]]  # type: ignore[union-attr]

    @property
    def exit_tasks(self) -> List[str]:
        """Tasks without successors, in topological order."""
        self.freeze()
        return [tid for tid in self._topo if not self._succ[tid]]  # type: ignore[union-attr]

    @property
    def topological_order(self) -> List[str]:
        """A deterministic topological ordering of task ids."""
        self.freeze()
        return list(self._topo)  # type: ignore[arg-type]

    def levels(self) -> Dict[str, int]:
        """Longest-path depth of each task from the entries (BDT grouping).

        Entry tasks are level 0; a task's level is one more than the maximum
        level of its predecessors. Tasks sharing a level are independent.
        """
        self.freeze()
        if self._levels is None:
            lvl: Dict[str, int] = {}
            for tid in self._topo:  # type: ignore[union-attr]
                preds = self._pred[tid]
                lvl[tid] = 1 + max((lvl[p] for p in preds), default=-1)
            self._levels = lvl
        return dict(self._levels)

    # ------------------------------------------------------------------
    # Aggregates used by the budget logic (Eq. 5-6)
    # ------------------------------------------------------------------
    def input_data_of(self, tid: str) -> float:
        """``size(d_pred,T)``: total bytes entering ``tid`` from predecessors."""
        return sum(self._pred[tid].values())

    def output_data_of(self, tid: str) -> float:
        """Total bytes produced by ``tid`` for its successors."""
        return sum(self._succ[tid].values())

    @property
    def total_edge_data(self) -> float:
        """``d_max``: total bytes carried by all internal edges."""
        return sum(data for s in self._succ.values() for data in s.values())

    @property
    def external_input_data(self) -> float:
        """``size(d_in,DC)``: bytes entering the cloud from outside."""
        return sum(t.external_input for t in self._tasks.values())

    @property
    def external_output_data(self) -> float:
        """``size(d_DC,out)``: bytes leaving the cloud."""
        return sum(t.external_output for t in self._tasks.values())

    @property
    def total_mean_work(self) -> float:
        """Sum of mean weights ``Σ w̄`` (instructions)."""
        return sum(t.mean_weight for t in self._tasks.values())

    @property
    def total_conservative_work(self) -> float:
        """Sum of planning weights ``Σ (w̄ + σ)`` (instructions)."""
        return sum(t.conservative_weight for t in self._tasks.values())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_sigma_ratio(self, ratio: float) -> "Workflow":
        """New workflow with every task's ``σ`` set to ``ratio × w̄``.

        This is the paper's §V-A protocol: one generated DAG is re-used with
        σ/w̄ ∈ {0.25, 0.5, 0.75, 1.0}.
        """
        wf = Workflow(name=f"{self.name}[sigma={ratio:g}]")
        for task in self._tasks.values():
            wf.add_task(task.with_sigma_ratio(ratio))
        for edge in self.edges():
            wf.add_edge(edge.producer, edge.consumer, edge.data)
        return wf.freeze()

    def subgraph(self, task_ids: Iterable[str], name: Optional[str] = None) -> "Workflow":
        """Induced sub-workflow on ``task_ids`` (edges inside the set only)."""
        keep = set(task_ids)
        missing = keep - set(self._tasks)
        if missing:
            raise KeyError(f"unknown task ids {sorted(missing)[:5]}")
        wf = Workflow(name=name or f"{self.name}[sub]")
        for tid in self._tasks:
            if tid in keep:
                wf.add_task(self._tasks[tid])
        for edge in self.edges():
            if edge.producer in keep and edge.consumer in keep:
                wf.add_edge(edge.producer, edge.consumer, edge.data)
        return wf.freeze()

    def __repr__(self) -> str:
        return (
            f"Workflow({self.name!r}, tasks={self.n_tasks}, edges={self.n_edges}, "
            f"data={self.total_edge_data:.3g}B)"
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        name: str,
        tasks: Sequence[Tuple[str, float, float]],
        edges: Sequence[Tuple[str, str, float]],
    ) -> "Workflow":
        """Compact constructor for tests and examples.

        ``tasks`` is a sequence of ``(id, mean_weight, sigma)``; ``edges`` of
        ``(producer, consumer, bytes)``.
        """
        wf = cls(name)
        for tid, mean, sigma in tasks:
            wf.add_task(Task(tid, StochasticWeight(mean, sigma)))
        for producer, consumer, data in edges:
            wf.add_edge(producer, consumer, data)
        return wf.freeze()
