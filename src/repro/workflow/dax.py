"""Pegasus DAX 2.x/3.x reader and writer.

The paper's benchmark workflows (CYBERSHAKE, LIGO, MONTAGE) are distributed
by the Pegasus project as *DAX* XML documents: ``<job>`` elements carrying a
``runtime`` attribute (seconds on a reference machine) and ``<uses>`` file
declarations with ``link="input"|"output"`` and a ``size`` in bytes;
``<child>/<parent>`` elements give control dependencies.

This module converts such documents into :class:`~repro.workflow.dag.Workflow`
objects:

* a job's weight mean is ``runtime × reference_speed`` (instructions);
* the data carried by edge ``P → C`` is the total size of files that ``P``
  declares as output and ``C`` declares as input;
* files consumed by some job but produced by none are *external inputs*
  (they contribute to ``d_in,DC``); files produced but never consumed are
  *external outputs* (``d_DC,out``).

A writer (:func:`write_dax`) is provided for round-trip tests and so users
can export generated workflows to the standard tool ecosystem.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, IO, List, Set, Tuple, Union
from xml.sax.saxutils import quoteattr

from ..errors import DaxParseError
from ..units import GFLOP
from .dag import Workflow
from .task import StochasticWeight, Task

__all__ = ["read_dax", "parse_dax", "write_dax", "DEFAULT_REFERENCE_SPEED"]

#: Speed of the reference machine implied by DAX ``runtime`` attributes.
#: Pegasus trace runtimes were measured on ~1 Gflop/s-era grid nodes.
DEFAULT_REFERENCE_SPEED = 1.0 * GFLOP


def _local(tag: str) -> str:
    """Strip any XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def parse_dax(
    source: Union[str, bytes],
    *,
    reference_speed: float = DEFAULT_REFERENCE_SPEED,
    sigma_ratio: float = 0.0,
    name: str = "",
) -> Workflow:
    """Parse a DAX document given as an XML string."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise DaxParseError(f"malformed DAX XML: {exc}") from exc
    return _build(root, reference_speed, sigma_ratio, name)


def read_dax(
    path_or_file: Union[str, IO[bytes], IO[str]],
    *,
    reference_speed: float = DEFAULT_REFERENCE_SPEED,
    sigma_ratio: float = 0.0,
    name: str = "",
) -> Workflow:
    """Parse a DAX document from a path or open file object."""
    try:
        tree = ET.parse(path_or_file)
    except ET.ParseError as exc:
        raise DaxParseError(f"malformed DAX XML: {exc}") from exc
    except OSError as exc:
        raise DaxParseError(f"cannot read DAX: {exc}") from exc
    return _build(tree.getroot(), reference_speed, sigma_ratio, name)


def _build(
    root: ET.Element, reference_speed: float, sigma_ratio: float, name: str
) -> Workflow:
    if _local(root.tag) != "adag":
        raise DaxParseError(f"root element is <{_local(root.tag)}>, expected <adag>")
    if reference_speed <= 0.0:
        raise DaxParseError(f"reference_speed must be > 0, got {reference_speed}")

    wf_name = name or root.get("name") or "dax-workflow"

    # First pass: jobs and their file usage.
    runtimes: Dict[str, float] = {}
    categories: Dict[str, str] = {}
    inputs: Dict[str, Dict[str, float]] = {}   # job -> file -> size
    outputs: Dict[str, Dict[str, float]] = {}  # job -> file -> size
    job_order: List[str] = []

    for element in root:
        if _local(element.tag) != "job":
            continue
        jid = element.get("id")
        if jid is None:
            raise DaxParseError("<job> without id attribute")
        if jid in runtimes:
            raise DaxParseError(f"duplicate job id {jid!r}")
        try:
            runtime = float(element.get("runtime", "0") or 0.0)
        except ValueError as exc:
            raise DaxParseError(f"job {jid!r}: bad runtime attribute") from exc
        if runtime < 0.0:
            raise DaxParseError(f"job {jid!r}: negative runtime {runtime}")
        runtimes[jid] = runtime
        categories[jid] = element.get("name", "")
        job_order.append(jid)
        inputs[jid] = {}
        outputs[jid] = {}
        for uses in element:
            if _local(uses.tag) != "uses":
                continue
            fname = uses.get("file") or uses.get("name")
            if fname is None:
                raise DaxParseError(f"job {jid!r}: <uses> without file name")
            link = (uses.get("link") or "").lower()
            try:
                size = float(uses.get("size", "0") or 0.0)
            except ValueError as exc:
                raise DaxParseError(f"job {jid!r}: bad size for file {fname!r}") from exc
            if size < 0.0:
                raise DaxParseError(f"job {jid!r}: negative size for file {fname!r}")
            if link == "input":
                inputs[jid][fname] = inputs[jid].get(fname, 0.0) + size
            elif link == "output":
                outputs[jid][fname] = outputs[jid].get(fname, 0.0) + size
            # other link kinds (e.g. "inout") are treated as both
            elif link == "inout":
                inputs[jid][fname] = inputs[jid].get(fname, 0.0) + size
                outputs[jid][fname] = outputs[jid].get(fname, 0.0) + size

    if not job_order:
        raise DaxParseError("DAX contains no <job> elements")

    # Second pass: explicit control dependencies.
    control_edges: Set[Tuple[str, str]] = set()
    for element in root:
        if _local(element.tag) != "child":
            continue
        child = element.get("ref")
        if child is None or child not in runtimes:
            raise DaxParseError(f"<child> references unknown job {child!r}")
        for parent_el in element:
            if _local(parent_el.tag) != "parent":
                continue
            parent = parent_el.get("ref")
            if parent is None or parent not in runtimes:
                raise DaxParseError(f"<parent> references unknown job {parent!r}")
            control_edges.add((parent, child))

    # Producers per file (for data-flow edges and external classification).
    producer_of: Dict[str, List[str]] = {}
    for jid in job_order:
        for fname in outputs[jid]:
            producer_of.setdefault(fname, []).append(jid)
    consumed: Set[str] = {fname for jid in job_order for fname in inputs[jid]}

    # Edge data: for each (parent, child) pair, sum sizes of files flowing
    # parent -> child. Dependencies come from <child>/<parent> declarations;
    # data-flow pairs not declared are added too (some DAX emitters omit
    # redundant control edges).
    edge_data: Dict[Tuple[str, str], float] = {edge: 0.0 for edge in control_edges}
    for jid in job_order:
        for fname, size in inputs[jid].items():
            for producer in producer_of.get(fname, []):
                if producer == jid:
                    continue
                key = (producer, jid)
                edge_data[key] = edge_data.get(key, 0.0) + size

    wf = Workflow(wf_name)
    for jid in job_order:
        mean = max(runtimes[jid], 1e-3) * reference_speed
        external_in = sum(
            size for fname, size in inputs[jid].items() if fname not in producer_of
        )
        external_out = sum(
            size for fname, size in outputs[jid].items() if fname not in consumed
        )
        wf.add_task(
            Task(
                id=jid,
                weight=StochasticWeight(mean, sigma_ratio * mean),
                category=categories[jid],
                external_input=external_in,
                external_output=external_out,
            )
        )
    for (parent, child), data in sorted(edge_data.items()):
        wf.add_edge(parent, child, data)
    return wf.freeze()


def write_dax(
    wf: Workflow,
    *,
    reference_speed: float = DEFAULT_REFERENCE_SPEED,
) -> str:
    """Serialize ``wf`` as a DAX 3.x document (inverse of :func:`parse_dax`).

    Edge data becomes one synthetic file per edge; external inputs/outputs
    become files without producer/consumer, so a round trip through
    :func:`parse_dax` reconstructs the same workflow (weights are mapped back
    through ``reference_speed``; sigmas are not representable in DAX and must
    be re-applied with :meth:`Workflow.with_sigma_ratio`).
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.6" '
        f'name={quoteattr(wf.name)} jobCount="{wf.n_tasks}" '
        f'childCount="{wf.n_edges}">',
    ]
    for tid in wf.topological_order:
        task = wf.task(tid)
        runtime = task.mean_weight / reference_speed
        lines.append(
            f'  <job id={quoteattr(tid)} name={quoteattr(task.category or "task")} '
            f'version="1.0" runtime="{runtime:.6f}">'
        )
        for pred, data in sorted(wf.predecessors(tid).items()):
            lines.append(
                f'    <uses file={quoteattr(f"edge_{pred}_{tid}")} link="input" '
                f'size="{data:.0f}"/>'
            )
        for succ, data in sorted(wf.successors(tid).items()):
            lines.append(
                f'    <uses file={quoteattr(f"edge_{tid}_{succ}")} link="output" '
                f'size="{data:.0f}"/>'
            )
        if task.external_input > 0.0:
            lines.append(
                f'    <uses file={quoteattr(f"ext_in_{tid}")} link="input" '
                f'size="{task.external_input:.0f}"/>'
            )
        if task.external_output > 0.0:
            lines.append(
                f'    <uses file={quoteattr(f"ext_out_{tid}")} link="output" '
                f'size="{task.external_output:.0f}"/>'
            )
        lines.append("  </job>")
    for tid in wf.topological_order:
        preds = wf.predecessors(tid)
        if not preds:
            continue
        lines.append(f"  <child ref={quoteattr(tid)}>")
        for pred in sorted(preds):
            lines.append(f"    <parent ref={quoteattr(pred)}/>")
        lines.append("  </child>")
    lines.append("</adag>")
    return "\n".join(lines) + "\n"
