"""CYBERSHAKE workflow generator.

Structure (§V-A of the paper; Juve et al. 2013): a set of *generating* tasks
(``SeismogramSynthesis``) run in parallel, each feeding exactly one
*calculating* task (``PeakValCalcOkaya``); every generating task also feeds
the agglomerator ``ZipSeis`` and every calculating task feeds the second
agglomerator ``ZipPSA``. Half the tasks (the synthesis ones) read *huge*
input data — the ~500 MB strain Green tensor extracts — which is the
property the paper highlights ("In CYBERSHAKE, half the tasks have huge
input data").

Task count: ``n = 2·pairs + 2`` (two agglomerators). For odd ``n`` one
leftover synthesis task without calculator is added so any requested size is
met exactly (n ≥ 4).
"""

from __future__ import annotations

from ...errors import WorkflowError
from ...rng import RngLike
from ...units import KB, MB
from ..dag import Workflow
from .base import GeneratorContext, TaskProfile

__all__ = ["generate_cybershake", "PROFILES"]

PROFILES = {
    # runtimes (s) and data (bytes) from the Pegasus characterization
    "SeismogramSynthesis": TaskProfile(runtime=24.0, input_bytes=547 * MB,
                                       output_bytes=165 * KB),
    "PeakValCalcOkaya": TaskProfile(runtime=1.2, output_bytes=0.5 * KB),
    "ZipSeis": TaskProfile(runtime=10.0, output_bytes=80 * MB),
    "ZipPSA": TaskProfile(runtime=5.0, output_bytes=2 * MB),
}


def generate_cybershake(
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    jitter: float = 0.25,
    runtime_scale: float = 100.0,
    name: str = "",
) -> Workflow:
    """Build a CYBERSHAKE-shaped workflow with exactly ``n_tasks`` tasks."""
    if n_tasks < 4:
        raise WorkflowError(f"CYBERSHAKE needs at least 4 tasks, got {n_tasks}")
    ctx = GeneratorContext(
        name or f"cybershake-{n_tasks}", rng=rng, sigma_ratio=sigma_ratio,
        jitter=jitter, runtime_scale=runtime_scale,
    )
    pairs, extra = divmod(n_tasks - 2, 2)

    synth = PROFILES["SeismogramSynthesis"]
    peak = PROFILES["PeakValCalcOkaya"]

    zipseis = ctx.add_task(
        "ZipSeis", PROFILES["ZipSeis"].runtime,
        external_output=PROFILES["ZipSeis"].output_bytes,
    )
    zippsa = ctx.add_task(
        "ZipPSA", PROFILES["ZipPSA"].runtime,
        external_output=PROFILES["ZipPSA"].output_bytes,
    )

    for i in range(pairs + extra):
        s = ctx.add_task(
            "SeismogramSynthesis", synth.runtime, external_input=synth.input_bytes
        )
        ctx.add_edge(s, zipseis, synth.output_bytes)
        if i < pairs:  # the odd leftover synthesis task has no calculator
            p = ctx.add_task("PeakValCalcOkaya", peak.runtime)
            ctx.add_edge(s, p, synth.output_bytes)
            ctx.add_edge(p, zippsa, peak.output_bytes)

    wf = ctx.finish()
    assert wf.n_tasks == n_tasks
    return wf
