"""Synthetic workflow generators for the Pegasus benchmark families.

:func:`generate` dispatches on a family name, so experiment configs can be
purely declarative::

    wf = generate("montage", 90, rng=7, sigma_ratio=0.5)
"""

from __future__ import annotations

from typing import Callable, Dict

from ...errors import WorkflowError
from ...rng import RngLike
from ..dag import Workflow
from .base import REFERENCE_SPEED, GeneratorContext, TaskProfile
from .cybershake import generate_cybershake
from .epigenomics import generate_epigenomics
from .ligo import generate_ligo
from .montage import generate_montage
from .random_dag import generate_random_layered
from .sipht import generate_sipht

__all__ = [
    "REFERENCE_SPEED",
    "GeneratorContext",
    "TaskProfile",
    "FAMILIES",
    "PAPER_FAMILIES",
    "generate",
    "generate_cybershake",
    "generate_epigenomics",
    "generate_ligo",
    "generate_montage",
    "generate_random_layered",
    "generate_sipht",
]

#: Families evaluated in the paper (§V-A).
PAPER_FAMILIES = ("cybershake", "ligo", "montage")

FAMILIES: Dict[str, Callable[..., Workflow]] = {
    "cybershake": generate_cybershake,
    "ligo": generate_ligo,
    "montage": generate_montage,
    "epigenomics": generate_epigenomics,
    "sipht": generate_sipht,
    "random": generate_random_layered,
}


def generate(
    family: str,
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    name: str = "",
    **kwargs,
) -> Workflow:
    """Build one workflow of the named ``family`` with ``n_tasks`` tasks."""
    try:
        factory = FAMILIES[family.lower()]
    except KeyError:
        raise WorkflowError(
            f"unknown workflow family {family!r}; available: {sorted(FAMILIES)}"
        ) from None
    return factory(n_tasks, rng=rng, sigma_ratio=sigma_ratio, name=name, **kwargs)
