"""Layered random DAG generator.

Not a Pegasus family — a controllable synthetic workload for stress tests,
property-based tests and ablation studies. Tasks are placed in layers; each
non-entry task draws 1..``max_fan_in`` predecessors from the previous
``locality`` layers. Weights and data sizes are lognormal around the given
nominal values, giving heavy-ish tails similar to real traces.
"""

from __future__ import annotations


import numpy as np

from ...errors import WorkflowError
from ...rng import RngLike, as_generator
from ...units import GFLOP, MB
from ..dag import Workflow
from ..task import StochasticWeight, Task

__all__ = ["generate_random_layered"]


def generate_random_layered(
    n_tasks: int,
    *,
    depth: int = 5,
    max_fan_in: int = 3,
    locality: int = 2,
    mean_weight: float = 30.0 * GFLOP,
    mean_data: float = 5.0 * MB,
    external_io_fraction: float = 0.2,
    sigma_ratio: float = 0.0,
    rng: RngLike = None,
    name: str = "",
) -> Workflow:
    """Build a random layered DAG with exactly ``n_tasks`` tasks.

    Parameters
    ----------
    depth:
        Number of layers (clamped to ``n_tasks``).
    max_fan_in:
        Upper bound on predecessors drawn per non-entry task.
    locality:
        Predecessors are drawn from at most this many preceding layers.
    mean_weight, mean_data:
        Nominal task weight (instructions) and edge payload (bytes);
        actual values are lognormal with unit mean around these.
    external_io_fraction:
        Fraction of entry (exit) tasks given external input (output) data of
        nominal size ``mean_data``.
    """
    if n_tasks < 1:
        raise WorkflowError(f"need at least 1 task, got {n_tasks}")
    if depth < 1 or max_fan_in < 1 or locality < 1:
        raise WorkflowError("depth, max_fan_in and locality must be >= 1")
    if mean_weight <= 0.0 or mean_data < 0.0:
        raise WorkflowError("mean_weight must be > 0 and mean_data >= 0")
    gen = as_generator(rng)
    depth = min(depth, n_tasks)

    # Distribute tasks over layers: at least one per layer, remainder random.
    counts = np.ones(depth, dtype=int)
    for _ in range(n_tasks - depth):
        counts[gen.integers(depth)] += 1

    wf = Workflow(name or f"random-{n_tasks}")
    layers: list[list[str]] = []
    serial = 0
    jitter = 0.5  # lognormal sigma for weights/data

    def lognormal(nominal: float) -> float:
        if nominal <= 0.0:
            return 0.0
        return nominal * float(gen.lognormal(-0.5 * jitter**2, jitter))

    for layer_idx in range(depth):
        layer: list[str] = []
        for _ in range(int(counts[layer_idx])):
            tid = f"t{serial:05d}"
            serial += 1
            mean = max(lognormal(mean_weight), 1e3)
            wf.add_task(
                Task(tid, StochasticWeight(mean, sigma_ratio * mean), category="rand")
            )
            layer.append(tid)
        layers.append(layer)

    for layer_idx in range(1, depth):
        pool: list[str] = []
        for back in range(1, locality + 1):
            if layer_idx - back >= 0:
                pool.extend(layers[layer_idx - back])
        for tid in layers[layer_idx]:
            k = int(gen.integers(1, max_fan_in + 1))
            k = min(k, len(pool))
            preds = gen.choice(len(pool), size=k, replace=False)
            for p in preds:
                wf.add_edge(pool[int(p)], tid, lognormal(mean_data))

    wf.freeze()

    # External I/O on a fraction of entries/exits. The Workflow is frozen, so
    # rebuild with the extra fields (cheap relative to generation).
    entries = wf.entry_tasks
    exits = wf.exit_tasks
    chosen_in = set(
        entries[i] for i in range(len(entries))
        if gen.random() < external_io_fraction
    )
    chosen_out = set(
        exits[i] for i in range(len(exits))
        if gen.random() < external_io_fraction
    )
    if chosen_in or chosen_out:
        rebuilt = Workflow(wf.name)
        for tid in wf.topological_order:
            task = wf.task(tid)
            rebuilt.add_task(
                Task(
                    id=task.id,
                    weight=task.weight,
                    category=task.category,
                    external_input=lognormal(mean_data) if tid in chosen_in else 0.0,
                    external_output=lognormal(mean_data) if tid in chosen_out else 0.0,
                )
            )
        for edge in wf.edges():
            rebuilt.add_edge(edge.producer, edge.consumer, edge.data)
        wf = rebuilt.freeze()

    assert wf.n_tasks == n_tasks
    return wf
