"""Shared machinery for the synthetic Pegasus-style workflow generators.

The paper generates its benchmark with "the simulator available on the
Pegasus website" (§V-A). That tool is not redistributable here, so each
family module in this package builds DAGs with the published structure and
task profiles (Juve et al., *Characterizing and Profiling Scientific
Workflows*, FGCS 2013), reproducing the qualitative properties the paper's
evaluation relies on. Task runtimes and file sizes are jittered per instance
with a lognormal factor, mimicking the variability across the five instances
per type used in §V-A.

All generators share the convention that a task's mean weight is
``runtime_seconds × REFERENCE_SPEED`` instructions, matching the DAX reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ...errors import WorkflowError
from ...rng import RngLike, as_generator
from ...units import GFLOP
from ..dag import Workflow
from ..task import StochasticWeight, Task

__all__ = ["REFERENCE_SPEED", "GeneratorContext", "TaskProfile"]

#: Speed of the reference machine behind published Pegasus runtimes.
REFERENCE_SPEED = 1.0 * GFLOP


@dataclass(frozen=True)
class TaskProfile:
    """Published profile of one transformation (runtime s, bytes)."""

    runtime: float
    input_bytes: float = 0.0
    output_bytes: float = 0.0


@dataclass
class GeneratorContext:
    """Builder handle shared by family generators.

    Wraps a :class:`Workflow` under construction together with the instance
    RNG and the global knobs (sigma ratio, jitter strength).

    Parameters
    ----------
    name:
        Workflow name.
    rng:
        Seed / generator for instance variability.
    sigma_ratio:
        ``σ/w̄`` applied to every task (paper protocol: 0.25 … 1.0).
    jitter:
        Lognormal sigma of the per-task runtime/data multiplier. ``0``
        produces the nominal published profile exactly.
    runtime_scale:
        Multiplier applied to every nominal runtime. The published Pegasus
        trace runtimes are seconds on a ~2008 grid node; at that scale VM
        rental money is dwarfed by setup fees and every algorithm collapses
        onto the same schedule. The paper's evaluation (budgets of dollars,
        up to 90 enrolled VMs, makespans of hours) implies tasks of
        minutes-to-hours; the default ×100 restores that regime while
        keeping the *relative* task profiles of each family intact
        (documented in DESIGN.md §4).
    """

    name: str
    rng: RngLike = None
    sigma_ratio: float = 0.0
    jitter: float = 0.25
    runtime_scale: float = 100.0
    workflow: Workflow = field(init=False)
    _gen: np.random.Generator = field(init=False)
    _counter: Dict[str, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.sigma_ratio < 0.0:
            raise WorkflowError(f"sigma_ratio must be >= 0, got {self.sigma_ratio}")
        if self.jitter < 0.0:
            raise WorkflowError(f"jitter must be >= 0, got {self.jitter}")
        if self.runtime_scale <= 0.0:
            raise WorkflowError(
                f"runtime_scale must be > 0, got {self.runtime_scale}"
            )
        self.workflow = Workflow(self.name)
        self._gen = as_generator(self.rng)

    # ------------------------------------------------------------------
    def vary(self, nominal: float) -> float:
        """Jitter a nominal quantity with a lognormal multiplier (mean 1)."""
        if nominal <= 0.0 or self.jitter == 0.0:
            return nominal
        factor = self._gen.lognormal(mean=-0.5 * self.jitter**2, sigma=self.jitter)
        return nominal * float(factor)

    def add_task(
        self,
        category: str,
        runtime: float,
        *,
        external_input: float = 0.0,
        external_output: float = 0.0,
        task_id: Optional[str] = None,
    ) -> str:
        """Create one task from a (possibly jittered) runtime in seconds.

        Returns the generated task id (``<category>_<k>``).
        """
        if task_id is None:
            k = self._counter.get(category, 0)
            self._counter[category] = k + 1
            task_id = f"{category}_{k:05d}"
        runtime = max(self.vary(runtime) * self.runtime_scale, 1e-3)
        mean = runtime * REFERENCE_SPEED
        self.workflow.add_task(
            Task(
                id=task_id,
                weight=StochasticWeight(mean, self.sigma_ratio * mean),
                category=category,
                external_input=max(self.vary(external_input), 0.0),
                external_output=max(self.vary(external_output), 0.0),
            )
        )
        return task_id

    def add_edge(self, producer: str, consumer: str, data: float) -> None:
        """Dependency with jittered data volume (bytes)."""
        self.workflow.add_edge(producer, consumer, max(self.vary(data), 0.0))

    def finish(self) -> Workflow:
        """Freeze and return the built workflow."""
        return self.workflow.freeze()
