"""EPIGENOMICS workflow generator (extension beyond the paper's three types).

The Epigenomics pipeline (Juve et al. 2013) processes DNA-methylation reads
in independent *lanes*; each lane is split into parallel chains of
``filterContams → sol2sanger → fastq2bfq → map`` whose results merge per
lane (``mapMerge``), and lane merges feed a global ``maqIndex → pileup``
tail::

    fastQSplit ─▶ [filterContams ─▶ sol2sanger ─▶ fastq2bfq ─▶ map] × m ─▶ mapMerge
        (one per lane)                                                  └─▶ ...
    all mapMerge ─▶ maqIndex ─▶ pileup
"""

from __future__ import annotations

from ...errors import WorkflowError
from ...rng import RngLike
from ...units import KB, MB
from ..dag import Workflow
from .base import GeneratorContext, TaskProfile

__all__ = ["generate_epigenomics", "PROFILES"]

PROFILES = {
    "fastQSplit": TaskProfile(runtime=35.0, input_bytes=1.8 * MB, output_bytes=0.0),
    "filterContams": TaskProfile(runtime=2.5, output_bytes=400 * KB),
    "sol2sanger": TaskProfile(runtime=0.5, output_bytes=350 * KB),
    "fastq2bfq": TaskProfile(runtime=1.5, output_bytes=150 * KB),
    "map": TaskProfile(runtime=110.0, output_bytes=100 * KB),
    "mapMerge": TaskProfile(runtime=10.0, output_bytes=300 * KB),
    "maqIndex": TaskProfile(runtime=45.0, output_bytes=1.1 * MB),
    "pileup": TaskProfile(runtime=55.0, output_bytes=3.0 * MB),
}

_CHAIN = ("filterContams", "sol2sanger", "fastq2bfq", "map")
_SPLIT_OUT = 400 * KB  # bytes shipped from fastQSplit to each chain head


def generate_epigenomics(
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    jitter: float = 0.25,
    runtime_scale: float = 100.0,
    name: str = "",
) -> Workflow:
    """Build an EPIGENOMICS-shaped workflow with exactly ``n_tasks`` tasks.

    Minimum size is 8: one lane with a single chain plus the global tail.
    """
    if n_tasks < 8:
        raise WorkflowError(f"EPIGENOMICS needs at least 8 tasks, got {n_tasks}")
    ctx = GeneratorContext(
        name or f"epigenomics-{n_tasks}", rng=rng, sigma_ratio=sigma_ratio,
        jitter=jitter, runtime_scale=runtime_scale,
    )

    # Global tail: maqIndex + pileup. Per lane: fastQSplit + mapMerge +
    # 4·chains. Choose lanes/chains so that 2 + Σ_l (2 + 4·m_l) == n_tasks.
    body = n_tasks - 2
    lane_nominal = 2 + 4 * 4  # 4 chains per lane nominally
    n_lanes = max(1, body // lane_nominal)

    maq_index = ctx.add_task("maqIndex", PROFILES["maqIndex"].runtime)
    pileup = ctx.add_task(
        "pileup", PROFILES["pileup"].runtime,
        external_output=PROFILES["pileup"].output_bytes,
    )
    ctx.add_edge(maq_index, pileup, PROFILES["maqIndex"].output_bytes)

    remaining = body
    for lane in range(n_lanes):
        lane_budget = remaining if lane == n_lanes - 1 else lane_nominal
        # chains must satisfy 2 + 4*m == lane_budget (+ leftover handled by
        # trimming the last chain below).
        m_chains = max(1, (lane_budget - 2) // len(_CHAIN))
        leftover = lane_budget - 2 - m_chains * len(_CHAIN)
        remaining -= lane_budget

        split = ctx.add_task(
            "fastQSplit", PROFILES["fastQSplit"].runtime,
            external_input=PROFILES["fastQSplit"].input_bytes,
        )
        merge = ctx.add_task("mapMerge", PROFILES["mapMerge"].runtime)
        ctx.add_edge(merge, maq_index, PROFILES["mapMerge"].output_bytes)

        for c in range(m_chains + (1 if leftover else 0)):
            stages = _CHAIN if c < m_chains else _CHAIN[:leftover]
            prev = split
            prev_bytes = _SPLIT_OUT
            for stage in stages:
                t = ctx.add_task(stage, PROFILES[stage].runtime)
                ctx.add_edge(prev, t, prev_bytes)
                prev = t
                prev_bytes = PROFILES[stage].output_bytes
            ctx.add_edge(prev, merge, prev_bytes)

    wf = ctx.finish()
    assert wf.n_tasks == n_tasks, (wf.n_tasks, n_tasks)
    return wf
