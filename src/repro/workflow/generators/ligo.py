"""LIGO Inspiral workflow generator.

Structure (§V-A of the paper; Juve et al. 2013): "LIGO consists of a lot of
parallel tasks sharing a link to some agglomerative tasks, one agglomerative
task per little set; this scheme repeats twice since there is a second
subdivision after the first agglomeration." And on the data: "most input
data have the same (large) size, only one of them is oversized compared with
the others (by a ratio over 100)".

Each *group* is therefore::

    TmpltBank × m ──▶ Thinca₁ ──▶ TrigBank/Inspiral × m' ──▶ Thinca₂

Groups are mutually independent, which is why large LIGO instances behave
like bags of tasks (§V-B of the paper). Exactly one TmpltBank task in the
whole workflow receives the oversized (×128) input frame.
"""

from __future__ import annotations

from ...errors import WorkflowError
from ...rng import RngLike
from ...units import KB, MB
from ..dag import Workflow
from .base import GeneratorContext, TaskProfile

__all__ = ["generate_ligo", "PROFILES", "OVERSIZE_RATIO"]

PROFILES = {
    "TmpltBank": TaskProfile(runtime=18.0, input_bytes=220 * MB, output_bytes=940 * KB),
    "Inspiral": TaskProfile(runtime=460.0, input_bytes=220 * MB, output_bytes=300 * KB),
    "Thinca": TaskProfile(runtime=5.0, output_bytes=120 * KB),
}

#: The single oversized input frame is this many times the common size.
OVERSIZE_RATIO = 128.0

#: Nominal tasks per group: m TmpltBank + Thinca + m' Inspiral + Thinca.
_GROUP_PARALLEL = 4  # m = m' = 4 -> 10 tasks per nominal group


def generate_ligo(
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    jitter: float = 0.25,
    runtime_scale: float = 100.0,
    name: str = "",
) -> Workflow:
    """Build a LIGO-shaped workflow with exactly ``n_tasks`` tasks."""
    if n_tasks < 4:
        raise WorkflowError(f"LIGO needs at least 4 tasks, got {n_tasks}")
    ctx = GeneratorContext(
        name or f"ligo-{n_tasks}", rng=rng, sigma_ratio=sigma_ratio,
        jitter=jitter, runtime_scale=runtime_scale,
    )
    tmplt, inspiral, thinca = (
        PROFILES["TmpltBank"], PROFILES["Inspiral"], PROFILES["Thinca"],
    )

    group_size = 2 * _GROUP_PARALLEL + 2
    n_groups = max(1, n_tasks // group_size)
    remaining = n_tasks
    oversized_placed = False

    for g in range(n_groups):
        budget = remaining if g == n_groups - 1 else group_size
        # Each group needs >= 4 tasks: 1 TmpltBank, Thinca, 1 Inspiral, Thinca.
        m1 = max(1, (budget - 2) // 2)
        m2 = max(1, budget - 2 - m1)
        remaining -= m1 + m2 + 2

        thinca1 = ctx.add_task("Thinca", thinca.runtime)
        for i in range(m1):
            ext = tmplt.input_bytes
            if not oversized_placed:
                ext *= OVERSIZE_RATIO
                oversized_placed = True
            t = ctx.add_task("TmpltBank", tmplt.runtime, external_input=ext)
            ctx.add_edge(t, thinca1, tmplt.output_bytes)
        thinca2 = ctx.add_task(
            "Thinca", thinca.runtime, external_output=thinca.output_bytes
        )
        for _ in range(m2):
            t = ctx.add_task("Inspiral", inspiral.runtime,
                             external_input=inspiral.input_bytes)
            ctx.add_edge(thinca1, t, thinca.output_bytes)
            ctx.add_edge(t, thinca2, inspiral.output_bytes)

    wf = ctx.finish()
    assert wf.n_tasks == n_tasks, (wf.n_tasks, n_tasks)
    return wf
