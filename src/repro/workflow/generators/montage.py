"""MONTAGE workflow generator.

Structure (§V-A of the paper; Juve et al. 2013): "MONTAGE has plenty highly
inter-connected tasks, rendering parallelization less easy. The number of
instructions of its different tasks is balanced, as is the size of the
exchanged data."

The real pipeline per input image tile::

    mProjectPP (one per image)
       │ (reprojected image, to every overlap neighbour)
    mDiffFit (one per overlapping image pair)
       │ (fit parameters)
    mConcatFit ──▶ mBgModel (single agglomerators)
       │ (background corrections, to every image)
    mBackground (one per image, also reads its mProjectPP output)
       │
    mImgtbl ──▶ mAdd ──▶ mShrink ──▶ mJPEG

Images overlap their neighbours in a strip: pair (i, i+1) always, plus pair
(i, i+2) every other image, giving the dense interconnection. With ``I``
images the task count is ``3·I + d + 5`` where ``d = #extra diff pairs``;
the generator solves for ``I`` and pads with extra mDiffFit pairs to hit the
requested size exactly.
"""

from __future__ import annotations

from ...errors import WorkflowError
from ...rng import RngLike
from ...units import KB, MB
from ..dag import Workflow
from .base import GeneratorContext, TaskProfile

__all__ = ["generate_montage", "PROFILES"]

PROFILES = {
    "mProjectPP": TaskProfile(runtime=13.0, input_bytes=1.7 * MB, output_bytes=8.2 * MB),
    "mDiffFit": TaskProfile(runtime=10.0, output_bytes=300 * KB),
    "mConcatFit": TaskProfile(runtime=43.0, output_bytes=1.2 * MB),
    "mBgModel": TaskProfile(runtime=56.0, output_bytes=110 * KB),
    "mBackground": TaskProfile(runtime=11.0, output_bytes=8.2 * MB),
    "mImgtbl": TaskProfile(runtime=12.0, output_bytes=350 * KB),
    "mAdd": TaskProfile(runtime=60.0, output_bytes=250 * MB),
    "mShrink": TaskProfile(runtime=16.0, output_bytes=12 * MB),
    "mJPEG": TaskProfile(runtime=7.0, output_bytes=1 * MB),
}


def _image_count_for(n_tasks: int) -> int:
    """Largest image count whose base pipeline fits in ``n_tasks``.

    Base pipeline size: I mProjectPP + (I-1) chain diffs + I mBackground +
    4 singles (mConcatFit, mBgModel, mImgtbl, mAdd) + mShrink + mJPEG
    = 3I + 5. Extra (i, i+2) diff pairs pad up to n_tasks.
    """
    images = (n_tasks - 5) // 3
    return max(images, 2)


def generate_montage(
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    jitter: float = 0.25,
    runtime_scale: float = 100.0,
    name: str = "",
) -> Workflow:
    """Build a MONTAGE-shaped workflow with exactly ``n_tasks`` tasks."""
    if n_tasks < 12:
        raise WorkflowError(f"MONTAGE needs at least 12 tasks, got {n_tasks}")
    ctx = GeneratorContext(
        name or f"montage-{n_tasks}", rng=rng, sigma_ratio=sigma_ratio,
        jitter=jitter, runtime_scale=runtime_scale,
    )
    images = _image_count_for(n_tasks)
    base = 3 * images + 5
    extra_pairs_needed = n_tasks - base

    project = PROFILES["mProjectPP"]
    diff = PROFILES["mDiffFit"]

    projections = [
        ctx.add_task("mProjectPP", project.runtime, external_input=project.input_bytes)
        for _ in range(images)
    ]

    # Overlap pairs: the strip chain plus skip-pairs until the count is met.
    pairs = [(i, i + 1) for i in range(images - 1)]
    skip = [(i, i + 2) for i in range(images - 2)]
    pairs.extend(skip[:extra_pairs_needed])
    while len(pairs) < images - 1 + extra_pairs_needed:
        # Tiny instances without enough skip-pairs: duplicate a chain pair
        # (two fit tasks on the same overlap), keeping the count exact.
        pairs.append(pairs[len(pairs) % (images - 1)])

    concat = ctx.add_task("mConcatFit", PROFILES["mConcatFit"].runtime)
    for a, b in pairs:
        d = ctx.add_task("mDiffFit", diff.runtime)
        ctx.add_edge(projections[a], d, project.output_bytes)
        ctx.add_edge(projections[b], d, project.output_bytes)
        ctx.add_edge(d, concat, diff.output_bytes)

    bgmodel = ctx.add_task("mBgModel", PROFILES["mBgModel"].runtime)
    ctx.add_edge(concat, bgmodel, PROFILES["mConcatFit"].output_bytes)

    imgtbl = ctx.add_task("mImgtbl", PROFILES["mImgtbl"].runtime)
    for proj in projections:
        bg = ctx.add_task("mBackground", PROFILES["mBackground"].runtime)
        ctx.add_edge(proj, bg, project.output_bytes)
        ctx.add_edge(bgmodel, bg, PROFILES["mBgModel"].output_bytes)
        ctx.add_edge(bg, imgtbl, PROFILES["mBackground"].output_bytes)

    madd = ctx.add_task("mAdd", PROFILES["mAdd"].runtime)
    ctx.add_edge(imgtbl, madd, PROFILES["mImgtbl"].output_bytes)
    shrink = ctx.add_task("mShrink", PROFILES["mShrink"].runtime)
    ctx.add_edge(madd, shrink, PROFILES["mAdd"].output_bytes)
    jpeg = ctx.add_task(
        "mJPEG", PROFILES["mJPEG"].runtime,
        external_output=PROFILES["mJPEG"].output_bytes,
    )
    ctx.add_edge(shrink, jpeg, PROFILES["mShrink"].output_bytes)

    wf = ctx.finish()
    assert wf.n_tasks == n_tasks, (wf.n_tasks, n_tasks)
    return wf
