"""SIPHT workflow generator (extension beyond the paper's three types).

The sRNA identification pipeline (Juve et al. 2013) has a distinctive
two-wing shape: a wide fan of short ``Patser`` motif-scan tasks concatenated
by ``Patser_concate``, alongside a group of heterogeneous ``Blast*``
homology searches; both wings join the ``SRNA`` prediction task, whose
output feeds the annotation tail (``FFN_parse``, ``SRNA_annotate``)::

    Patser × p ─▶ Patser_concate ─┐
    Blast*  × b ──────────────────┼─▶ SRNA ─▶ FFN_parse ─▶ SRNA_annotate
"""

from __future__ import annotations

from ...errors import WorkflowError
from ...rng import RngLike
from ...units import KB, MB
from ..dag import Workflow
from .base import GeneratorContext, TaskProfile

__all__ = ["generate_sipht", "PROFILES"]

PROFILES = {
    "Patser": TaskProfile(runtime=1.0, input_bytes=3 * MB, output_bytes=2 * KB),
    "Patser_concate": TaskProfile(runtime=0.3, output_bytes=300 * KB),
    "Blast": TaskProfile(runtime=210.0, input_bytes=40 * MB, output_bytes=700 * KB),
    "SRNA": TaskProfile(runtime=12.0, output_bytes=1.5 * MB),
    "FFN_parse": TaskProfile(runtime=0.5, output_bytes=300 * KB),
    "SRNA_annotate": TaskProfile(runtime=3.0, output_bytes=900 * KB),
}


def generate_sipht(
    n_tasks: int,
    *,
    rng: RngLike = None,
    sigma_ratio: float = 0.0,
    jitter: float = 0.25,
    runtime_scale: float = 100.0,
    name: str = "",
) -> Workflow:
    """Build a SIPHT-shaped workflow with exactly ``n_tasks`` tasks (n ≥ 6)."""
    if n_tasks < 6:
        raise WorkflowError(f"SIPHT needs at least 6 tasks, got {n_tasks}")
    ctx = GeneratorContext(
        name or f"sipht-{n_tasks}", rng=rng, sigma_ratio=sigma_ratio,
        jitter=jitter, runtime_scale=runtime_scale,
    )
    fan = n_tasks - 4  # Patser_concate, SRNA, FFN_parse, SRNA_annotate
    # Patser wing gets two thirds of the fan, Blast wing one third.
    n_patser = max(1, (2 * fan) // 3)
    n_blast = max(1, fan - n_patser)
    n_patser = fan - n_blast

    concate = ctx.add_task("Patser_concate", PROFILES["Patser_concate"].runtime)
    for _ in range(n_patser):
        p = ctx.add_task(
            "Patser", PROFILES["Patser"].runtime,
            external_input=PROFILES["Patser"].input_bytes,
        )
        ctx.add_edge(p, concate, PROFILES["Patser"].output_bytes)

    srna = ctx.add_task("SRNA", PROFILES["SRNA"].runtime)
    ctx.add_edge(concate, srna, PROFILES["Patser_concate"].output_bytes)
    for _ in range(n_blast):
        b = ctx.add_task(
            "Blast", PROFILES["Blast"].runtime,
            external_input=PROFILES["Blast"].input_bytes,
        )
        ctx.add_edge(b, srna, PROFILES["Blast"].output_bytes)

    ffn = ctx.add_task("FFN_parse", PROFILES["FFN_parse"].runtime)
    ctx.add_edge(srna, ffn, PROFILES["SRNA"].output_bytes)
    annotate = ctx.add_task(
        "SRNA_annotate", PROFILES["SRNA_annotate"].runtime,
        external_output=PROFILES["SRNA_annotate"].output_bytes,
    )
    ctx.add_edge(ffn, annotate, PROFILES["FFN_parse"].output_bytes)

    wf = ctx.finish()
    assert wf.n_tasks == n_tasks, (wf.n_tasks, n_tasks)
    return wf
