"""Workflow substrate: stochastic tasks, DAGs, DAX I/O and generators."""

from .analysis import bottom_levels, critical_path, graph_stats, heft_order, top_levels
from .dag import Edge, Workflow
from .dax import parse_dax, read_dax, write_dax
from .task import StochasticWeight, Task

__all__ = [
    "Edge",
    "StochasticWeight",
    "Task",
    "Workflow",
    "bottom_levels",
    "critical_path",
    "graph_stats",
    "heft_order",
    "parse_dax",
    "read_dax",
    "top_levels",
    "write_dax",
]
