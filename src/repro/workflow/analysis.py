"""Graph analyses used by the schedulers and the reports.

The central quantity is the *bottom level* (HEFT's upward rank, [24] in the
paper): the length of the longest path from a task to an exit, counting the
task's own execution time and the communication time of traversed edges.
Times are computed with the paper's planning conventions — conservative
weights ``w̄ + σ`` divided by the mean platform speed, edge bytes divided by
the VM↔datacenter bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .dag import Workflow

__all__ = [
    "bottom_levels",
    "top_levels",
    "heft_order",
    "critical_path",
    "graph_stats",
]


def bottom_levels(
    wf: Workflow,
    mean_speed: float,
    bandwidth: float,
    *,
    use_conservative: bool = True,
) -> Dict[str, float]:
    """Upward rank of every task (seconds).

    ``rank(T) = exec(T) + max over successors S of (comm(T,S) + rank(S))``
    with ``exec(T) = weight/mean_speed`` and ``comm = bytes/bandwidth``.
    """
    if mean_speed <= 0.0:
        raise ValueError(f"mean_speed must be > 0, got {mean_speed}")
    if bandwidth <= 0.0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
    ranks: Dict[str, float] = {}
    for tid in reversed(wf.topological_order):
        task = wf.task(tid)
        weight = task.conservative_weight if use_conservative else task.mean_weight
        exec_time = weight / mean_speed
        best_tail = 0.0
        for succ, data in wf.successors(tid).items():
            tail = data / bandwidth + ranks[succ]
            if tail > best_tail:
                best_tail = tail
        ranks[tid] = exec_time + best_tail
    return ranks


def top_levels(
    wf: Workflow,
    mean_speed: float,
    bandwidth: float,
    *,
    use_conservative: bool = True,
) -> Dict[str, float]:
    """Downward rank: longest time from workflow start to a task's start."""
    if mean_speed <= 0.0 or bandwidth <= 0.0:
        raise ValueError("mean_speed and bandwidth must be > 0")
    tl: Dict[str, float] = {}
    for tid in wf.topological_order:
        best = 0.0
        for pred, data in wf.predecessors(tid).items():
            task = wf.task(pred)
            weight = task.conservative_weight if use_conservative else task.mean_weight
            cand = tl[pred] + weight / mean_speed + data / bandwidth
            if cand > best:
                best = cand
        tl[tid] = best
    return tl


def heft_order(wf: Workflow, mean_speed: float, bandwidth: float) -> List[str]:
    """Tasks by non-increasing bottom level — HEFT's scheduling list.

    Ties are broken by topological position so the ordering is always a
    valid scheduling order (predecessors first) and deterministic.
    """
    ranks = bottom_levels(wf, mean_speed, bandwidth)
    position = {tid: i for i, tid in enumerate(wf.topological_order)}
    return sorted(wf.topological_order, key=lambda t: (-ranks[t], position[t]))


def critical_path(
    wf: Workflow, mean_speed: float, bandwidth: float
) -> Tuple[List[str], float]:
    """A longest entry→exit path and its length in seconds.

    Returns ``(task ids along the path, length)``; the length equals the
    maximum bottom level over entry tasks.
    """
    ranks = bottom_levels(wf, mean_speed, bandwidth)
    entries = wf.entry_tasks
    start = max(entries, key=lambda t: ranks[t])
    path = [start]
    current = start
    while wf.successors(current):
        best_succ: Optional[str] = None
        best_val = -1.0
        for succ, data in wf.successors(current).items():
            val = data / bandwidth + ranks[succ]
            if val > best_val:
                best_val = val
                best_succ = succ
        assert best_succ is not None
        path.append(best_succ)
        current = best_succ
    return path, ranks[start]


def graph_stats(wf: Workflow) -> Dict[str, float]:
    """Structural summary used by reports and the workload tables.

    Keys: ``n_tasks``, ``n_edges``, ``depth`` (number of levels), ``width``
    (max tasks per level), ``mean_degree``, ``edge_data`` (bytes),
    ``mean_work`` (instructions).
    """
    levels = wf.levels()
    depth = 1 + max(levels.values()) if levels else 0
    width_per_level: Dict[int, int] = {}
    for lvl in levels.values():
        width_per_level[lvl] = width_per_level.get(lvl, 0) + 1
    return {
        "n_tasks": float(wf.n_tasks),
        "n_edges": float(wf.n_edges),
        "depth": float(depth),
        "width": float(max(width_per_level.values()) if width_per_level else 0),
        "mean_degree": wf.n_edges / max(wf.n_tasks, 1),
        "edge_data": wf.total_edge_data,
        "mean_work": wf.total_mean_work,
    }
